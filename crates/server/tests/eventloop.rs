//! Robustness tests for the event-loop broker (`IoModel::EventLoop`,
//! the default): framing over torn writes, oversized-line handling,
//! idle reaping, slow-consumer policy, admission control, the netio
//! STATS gauges, and the headline property — one fixed worker pool
//! serving ~1k idle subscribers with no per-connection threads. A
//! threaded-model parity test pins the same protocol behavior to
//! `IoModel::Threads` so the two stay interchangeable.

use apcm_bexpr::{parser, Schema, SubId};
use apcm_server::{BrokerClient, EngineChoice, IoModel, Server, ServerConfig, SlowConsumerPolicy};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn base_config() -> ServerConfig {
    ServerConfig {
        shards: 2,
        engine: EngineChoice::Apcm,
        window: 16,
        flush_interval: Duration::from_millis(5),
        maintenance_interval: Duration::from_millis(50),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (Server, String) {
    let schema = Schema::uniform(3, 16);
    let server = Server::start(schema, config, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn raw_conn(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

/// How many OS threads this process is running (server threads
/// included — the broker runs in-process in these tests).
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

#[test]
fn oversized_line_reports_error_and_keeps_connection() {
    let (server, addr) = start(ServerConfig {
        max_line_bytes: 64,
        ..base_config()
    });
    let (mut stream, mut reader) = raw_conn(&addr);
    let big = vec![b'x'; 4096];
    stream.write_all(&big).unwrap();
    stream.write_all(b"\nPING\n").unwrap();
    let reply = read_reply(&mut reader);
    assert!(reply.starts_with("-ERR line too long"), "{reply}");
    assert_eq!(read_reply(&mut reader), "+PONG");

    let mut probe = BrokerClient::connect(&addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    let stats = probe.stats().unwrap();
    assert!(stats["oversized_lines"] >= 1, "{stats:?}");
    server.shutdown();
}

#[test]
fn torn_lines_reassemble_from_dribbled_bytes() {
    let (server, addr) = start(base_config());
    let (mut stream, mut reader) = raw_conn(&addr);
    // One byte per segment, flushed, with pauses: the loop sees up to
    // one readiness event per byte and must re-join the frame.
    for b in b"SUB 7 a0 >= 0" {
        stream.write_all(&[*b]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    stream.write_all(b"\n").unwrap();
    assert_eq!(read_reply(&mut reader), "+OK 7");
    // A torn pair: half a PING in one write, the rest plus a whole
    // UNSUB in the next.
    stream.write_all(b"PI").unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(5));
    stream.write_all(b"NG\nUNSUB 7\n").unwrap();
    assert_eq!(read_reply(&mut reader), "+PONG");
    assert_eq!(read_reply(&mut reader), "+OK 7");
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped() {
    let (server, addr) = start(ServerConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        ..base_config()
    });
    let (mut stream, mut reader) = raw_conn(&addr);
    stream.write_all(b"PING\n").unwrap();
    assert_eq!(read_reply(&mut reader), "+PONG");
    // Go quiet: the loop's timer wheel should close us.
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "expected a silent close, got {rest:?}");

    // A fresh (active) connection sees the reap in STATS.
    let mut probe = BrokerClient::connect(&addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        probe.ping().unwrap();
        let stats = probe.stats().unwrap();
        if stats["idle_reaped"] >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "idle reap never counted");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn slow_consumer_disconnect_policy_kicks_the_laggard() {
    let schema = Schema::uniform(3, 16);
    // The queue must hold one batch's acks + RESULT rows for the
    // publisher (which drains between batches) while still being small
    // enough that the never-reading subscriber overflows it.
    let (server, addr) = start(ServerConfig {
        conn_queue: 64,
        slow_consumer: SlowConsumerPolicy::Disconnect,
        ..base_config()
    });
    // The slow reader subscribes to everything and never reads.
    let mut slow = BrokerClient::connect(&addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    let sub = parser::parse_subscription_with_id(&schema, SubId(1), "a0 >= 0").unwrap();
    slow.subscribe(&sub, &schema).unwrap();

    // The publisher floods EVENT notifications at the slow reader via
    // BATCH — publish_batch drains the publisher's own acks and RESULT
    // rows, so only the laggard's queue backs up.
    let mut publisher = BrokerClient::connect(&addr).unwrap();
    publisher
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    let event = parser::parse_event(&schema, "a0 = 1, a1 = 1, a2 = 1").unwrap();
    let window: Vec<_> = std::iter::repeat_with(|| event.clone()).take(32).collect();
    let mut probe = BrokerClient::connect(&addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        publisher.publish_batch(&window, &schema).unwrap();
        let stats = probe.stats().unwrap();
        if stats["slow_disconnects"] >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect policy never fired: {stats:?}"
        );
    }
    server.shutdown();
}

#[test]
fn admission_cap_rejects_with_server_busy() {
    let (server, addr) = start(ServerConfig {
        max_conns: Some(2),
        ..base_config()
    });
    // Fill the cap and prove both admitted connections work.
    let (mut s1, mut r1) = raw_conn(&addr);
    let (mut s2, mut r2) = raw_conn(&addr);
    s1.write_all(b"PING\n").unwrap();
    assert_eq!(read_reply(&mut r1), "+PONG");
    s2.write_all(b"PING\n").unwrap();
    assert_eq!(read_reply(&mut r2), "+PONG");

    let (_s3, mut r3) = raw_conn(&addr);
    assert_eq!(read_reply(&mut r3), "-ERR server busy");
    let mut rest = String::new();
    r3.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "rejected conn should be closed");

    s1.write_all(b"STATS\n").unwrap();
    let header = read_reply(&mut r1);
    assert!(header.starts_with("+OK stats"), "{header}");
    let mut saw_rejected = false;
    loop {
        let line = read_reply(&mut r1);
        if line == "." {
            break;
        }
        if line == "conns_rejected 1" {
            saw_rejected = true;
        }
    }
    assert!(saw_rejected, "conns_rejected should be 1");
    server.shutdown();
}

#[test]
fn admission_cap_parity_under_threads_model() {
    let (server, addr) = start(ServerConfig {
        io_model: IoModel::Threads,
        max_conns: Some(1),
        ..base_config()
    });
    let (mut s1, mut r1) = raw_conn(&addr);
    s1.write_all(b"PING\n").unwrap();
    assert_eq!(read_reply(&mut r1), "+PONG");
    let (_s2, mut r2) = raw_conn(&addr);
    assert_eq!(read_reply(&mut r2), "-ERR server busy");
    let mut rest = String::new();
    r2.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty());
    server.shutdown();
}

#[test]
fn threads_model_serves_identical_protocol() {
    let schema = Schema::uniform(3, 16);
    let (server, addr) = start(ServerConfig {
        io_model: IoModel::Threads,
        ..base_config()
    });
    let mut client = BrokerClient::connect(&addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    client.ping().unwrap();
    let sub = parser::parse_subscription_with_id(&schema, SubId(3), "a0 >= 8").unwrap();
    client.subscribe(&sub, &schema).unwrap();
    let events = vec![
        parser::parse_event(&schema, "a0 = 9, a1 = 0").unwrap(),
        parser::parse_event(&schema, "a0 = 2, a1 = 0").unwrap(),
    ];
    let rows = client.publish_batch(&events, &schema).unwrap();
    assert_eq!(rows[&0], vec![SubId(3)]);
    assert!(rows[&1].is_empty());
    let stats = client.stats().unwrap();
    assert_eq!(stats["conns_rejected"], 0);
    // The netio gauges are loop-mode-only keys.
    assert!(!stats.contains_key("connections_open"), "{stats:?}");
    assert!(!stats.contains_key("epoll_wakeups"));
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn thousand_idle_subscribers_on_one_fixed_pool() {
    const CONNS: usize = 1000;
    let (server, addr) = start(ServerConfig {
        loop_workers: Some(2),
        ..base_config()
    });
    let threads_before = process_threads();

    let mut conns = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let (mut stream, mut reader) = raw_conn(&addr);
        stream
            .write_all(format!("SUB {i} a0 >= {}\n", i % 16).as_bytes())
            .unwrap();
        assert_eq!(read_reply(&mut reader), format!("+OK {i}"));
        conns.push((stream, reader));
    }

    // The whole fleet is served by the fixed pool: no per-connection
    // threads appeared. (Allow slack for transient blocking offloads.)
    let grown = process_threads().saturating_sub(threads_before);
    assert!(
        grown < 10,
        "expected a fixed worker pool, thread count grew by {grown} for {CONNS} conns"
    );

    // The loop gauges see every connection, and a random subscriber is
    // still live.
    let mut probe = BrokerClient::connect(&addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    let stats = probe.stats().unwrap();
    assert!(
        stats["connections_open"] >= CONNS as u64,
        "connections_open {} < {CONNS}",
        stats["connections_open"]
    );
    assert!(stats.contains_key("epoll_wakeups"));
    assert!(stats.contains_key("outbound_queue_lines"));

    let (stream, reader) = &mut conns[617];
    stream.write_all(b"PING\n").unwrap();
    assert_eq!(read_reply(reader), "+PONG");

    drop(conns);
    server.shutdown();
}
