//! Crash/recovery harness for the durable subscription state.
//!
//! Every test drives a real broker over loopback TCP, "crashes" it
//! ([`Server::abort`]: no final flush, no shutdown snapshot), restarts a
//! fresh broker on the same persist directory, and asserts the restored
//! engine produces match results identical to a brute-force scan oracle
//! over the churn that was **acknowledged** before the crash — the
//! ack-after-append contract.
//!
//! Failpoints are a process-global registry, so every test serializes on
//! [`lock`]; a concurrently running server would otherwise consume another
//! test's armed failure.

use apcm_bexpr::{SubId, Subscription};
use apcm_server::persist::failpoint::{self, FailAction};
use apcm_server::{BrokerClient, EngineChoice, PersistConfig, Server, ServerConfig};
use apcm_workload::WorkloadSpec;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apcm_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn persisted_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        shards: 3,
        engine: EngineChoice::Apcm,
        window: 32,
        flush_interval: Duration::from_millis(5),
        maintenance_interval: Duration::from_millis(100),
        persist: Some(PersistConfig {
            // Background snapshots off: the tests control snapshot timing.
            snapshot_interval: None,
            retry_backoff: Duration::from_millis(20),
            ..PersistConfig::new(dir)
        }),
        ..ServerConfig::default()
    }
}

fn start(schema: &apcm_bexpr::Schema, config: ServerConfig) -> (Server, BrokerClient) {
    let server = Server::start(schema.clone(), config, "127.0.0.1:0").unwrap();
    let client = BrokerClient::connect(&server.local_addr().to_string()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    (server, client)
}

/// Brute-force oracle over a live set.
fn oracle_rows(subs: &[&Subscription], events: &[apcm_bexpr::Event]) -> Vec<Vec<SubId>> {
    events
        .iter()
        .map(|ev| {
            let mut row: Vec<SubId> = subs
                .iter()
                .filter(|s| s.matches(ev))
                .map(|s| s.id())
                .collect();
            row.sort_unstable();
            row
        })
        .collect()
}

/// Restarts on `dir` and asserts the restored broker matches exactly like
/// a scan oracle over `acked` (the acknowledged live set at crash time).
fn assert_restored_agrees(
    wl: &apcm_workload::Workload,
    dir: &Path,
    acked: &BTreeMap<SubId, &Subscription>,
) -> BTreeMap<String, u64> {
    let (server, mut client) = start(&wl.schema, persisted_config(dir));
    let report = server.recovery_report().expect("persistence is on").clone();
    assert_eq!(
        report.live_subs,
        acked.len(),
        "restored count != acknowledged churn; report:\n{report}"
    );
    assert_eq!(server.engine().len(), acked.len());

    let events = wl.events(64);
    let results = client.publish_batch(&events, &wl.schema).unwrap();
    let live: Vec<&Subscription> = acked.values().copied().collect();
    let expect = oracle_rows(&live, &events);
    for (seq, row) in &results {
        assert_eq!(
            row, &expect[*seq as usize],
            "event {seq} disagreed with the scan oracle after recovery"
        );
    }
    let stats = client.stats().unwrap();
    client.quit().unwrap();
    server.shutdown();
    stats
}

#[test]
fn restart_round_trip_at_scales() {
    let _guard = lock();
    for &n in &[16usize, 200, 800] {
        let wl = WorkloadSpec::new(n).seed(0xd00d + n as u64).build();
        let dir = tmpdir(&format!("roundtrip_{n}"));

        let (server, mut client) = start(&wl.schema, persisted_config(&dir));
        assert_eq!(server.recovery_report().unwrap().live_subs, 0);
        let mut acked: BTreeMap<SubId, &Subscription> = BTreeMap::new();
        for sub in &wl.subs {
            client.subscribe(sub, &wl.schema).unwrap();
            acked.insert(sub.id(), sub);
        }
        // Snapshot mid-churn so recovery exercises snapshot + log replay.
        let snap_reply = client.snapshot().unwrap();
        assert!(snap_reply.contains("snapshot"), "{snap_reply}");
        // Post-snapshot churn lands in the (rotated) log only.
        for sub in wl.subs.iter().take(n / 4) {
            client.unsubscribe(sub.id()).unwrap();
            acked.remove(&sub.id());
        }
        client.quit().unwrap();
        server.shutdown(); // graceful: flushes the log

        let stats = assert_restored_agrees(&wl, &dir, &acked);
        assert_eq!(stats["recovered_subs"], acked.len() as u64);
        assert_eq!(stats["recovery_corrupt_dropped"], 0);
        assert_eq!(stats["recovery_truncated_bytes"], 0);
        assert!(stats["recovery_log_applied"] >= (n / 4) as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_log_tail_is_truncated_on_restart() {
    let _guard = lock();
    let wl = WorkloadSpec::new(60).seed(0x7041).build();
    let dir = tmpdir("torn_tail");

    let (server, mut client) = start(&wl.schema, persisted_config(&dir));
    let mut acked: BTreeMap<SubId, &Subscription> = BTreeMap::new();
    for sub in &wl.subs {
        client.subscribe(sub, &wl.schema).unwrap();
        acked.insert(sub.id(), sub);
    }
    client.quit().unwrap();
    server.shutdown();

    // Simulate a crash mid-append: an unterminated half-record at the tail.
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("churn.log"))
        .unwrap();
    file.write_all(b"deadbeef 9999 S 77 a0 <").unwrap();
    drop(file);

    let stats = assert_restored_agrees(&wl, &dir, &acked);
    assert!(stats["recovery_truncated_bytes"] > 0);
    assert_eq!(stats["recovered_subs"], acked.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_log_record_is_skipped_on_restart() {
    let _guard = lock();
    let wl = WorkloadSpec::new(40).seed(0xbad).build();
    let dir = tmpdir("bitrot");

    let (server, mut client) = start(&wl.schema, persisted_config(&dir));
    let mut acked: BTreeMap<SubId, &Subscription> = BTreeMap::new();
    for sub in &wl.subs {
        client.subscribe(sub, &wl.schema).unwrap();
        acked.insert(sub.id(), sub);
    }
    client.quit().unwrap();
    server.shutdown();

    // Bit-rot one mid-file record's payload; its CRC no longer matches, so
    // recovery must drop exactly that record and keep everything else.
    let log_path = dir.join("churn.log");
    let text = std::fs::read_to_string(&log_path).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    assert!(lines.len() >= 10);
    let victim = lines[4].clone();
    // `<crc> <seq> S <id> <expr>` — learn which sub the record carried.
    let victim_id: u32 = victim.split_whitespace().nth(3).unwrap().parse().unwrap();
    lines[4] = {
        let mut bytes = victim.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] = if bytes[last] == b'0' { b'1' } else { b'0' };
        String::from_utf8(bytes).unwrap()
    };
    std::fs::write(&log_path, lines.join("\n") + "\n").unwrap();
    acked.remove(&SubId(victim_id));

    let stats = assert_restored_agrees(&wl, &dir, &acked);
    assert_eq!(stats["recovery_corrupt_dropped"], 1);
    assert_eq!(stats["recovered_subs"], acked.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_recovers_from_log_alone() {
    let _guard = lock();
    let wl = WorkloadSpec::new(50).seed(0x5e1f).build();
    let dir = tmpdir("bad_snapshot");

    let (server, mut client) = start(&wl.schema, persisted_config(&dir));
    let mut acked: BTreeMap<SubId, &Subscription> = BTreeMap::new();
    // First half before the snapshot, second half after: damaging the
    // snapshot must lose only what the log no longer covers.
    for sub in &wl.subs[..25] {
        client.subscribe(sub, &wl.schema).unwrap();
    }
    client.snapshot().unwrap();
    for sub in &wl.subs[25..] {
        client.subscribe(sub, &wl.schema).unwrap();
        acked.insert(sub.id(), sub);
    }
    client.quit().unwrap();
    server.shutdown();

    let snap_path = dir.join("snapshot.apcm");
    let mut data = std::fs::read(&snap_path).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0x10;
    std::fs::write(&snap_path, &data).unwrap();

    // Only the post-snapshot half survives — counted, not panicked.
    let stats = assert_restored_agrees(&wl, &dir, &acked);
    assert!(stats["recovery_corrupt_dropped"] >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance property: for every injected crash point, a restarted
/// broker's restored subscription set produces match results identical to
/// a scan oracle over the pre-crash **acknowledged** churn.
#[test]
fn crash_point_matrix_agrees_with_oracle() {
    let _guard = lock();
    let cases: &[(&str, FailAction, bool)] = &[
        // (failpoint, action, also block inline repair)
        ("persist.log.append", FailAction::Error, false),
        ("persist.log.append", FailAction::TornWrite(7), false),
        ("persist.log.append", FailAction::TornWrite(11), true),
        ("persist.snapshot.write", FailAction::Error, false),
        ("persist.snapshot.rename", FailAction::Error, false),
        // Colstore v2 crash points: a failed block write or manifest swap
        // must leave the previous snapshot (or no snapshot) intact, with
        // the un-rotated log covering everything.
        ("colstore.block.write", FailAction::Error, false),
        ("colstore.block.write", FailAction::TornWrite(13), false),
        ("colstore.manifest.rename", FailAction::Error, false),
    ];
    for &(point, action, block_repair) in cases {
        let tag = format!(
            "crash_{}_{}{}",
            point.replace('.', "_"),
            match action {
                FailAction::Error => "err".to_string(),
                FailAction::TornWrite(n) => format!("torn{n}"),
                FailAction::Stall(ms) => format!("stall{ms}"),
            },
            if block_repair { "_norepair" } else { "" }
        );
        let wl = WorkloadSpec::new(48).seed(0xc4a5).build();
        let dir = tmpdir(&tag);
        failpoint::reset();

        let (server, mut client) = start(&wl.schema, persisted_config(&dir));
        let mut acked: BTreeMap<SubId, &Subscription> = BTreeMap::new();
        for sub in &wl.subs[..32] {
            client.subscribe(sub, &wl.schema).unwrap();
            acked.insert(sub.id(), sub);
        }

        failpoint::arm(point, action, Some(1));
        if block_repair {
            failpoint::arm("persist.log.repair", FailAction::Error, None);
        }

        if point.starts_with("persist.log") {
            // The armed append fails => the op must be NACKed and rolled
            // back; later churn succeeds again once the log self-repairs.
            let mut nacked = 0;
            for sub in &wl.subs[32..] {
                match client.subscribe(sub, &wl.schema) {
                    Ok(()) => {
                        acked.insert(sub.id(), sub);
                    }
                    Err(_) => {
                        nacked += 1;
                        // Give the backoff window time to lapse so the
                        // next attempt can repair (unless blocked).
                        std::thread::sleep(Duration::from_millis(40));
                    }
                }
            }
            assert!(nacked >= 1, "{tag}: the armed failpoint never fired");
            if block_repair {
                // Repair is impossible: everything after the failure must
                // have been refused, not silently half-applied.
                assert_eq!(acked.len(), 32, "{tag}");
            }
        } else {
            // Snapshot crash points: the command fails, churn is unharmed.
            assert!(client.snapshot().is_err(), "{tag}");
            for sub in &wl.subs[32..40] {
                client.subscribe(sub, &wl.schema).unwrap();
                acked.insert(sub.id(), sub);
            }
        }

        drop(client);
        server.abort(); // crash: no flush, no shutdown snapshot
        failpoint::reset();

        let stats = assert_restored_agrees(&wl, &dir, &acked);
        if block_repair {
            // The torn half-record was left on disk; recovery truncated it.
            assert!(stats["recovery_truncated_bytes"] > 0, "{tag}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The prepare/compress split: a snapshot pass only holds the catalog
/// lock while it clones the subscription set; compression and the actual
/// file write run outside it. Stalling the block write must not stall
/// churn acks.
#[test]
fn churn_acks_flow_during_snapshot_compress() {
    let _guard = lock();
    let wl = WorkloadSpec::new(80).seed(0x57a1).build();
    let dir = tmpdir("stall_compress");
    failpoint::reset();

    let (server, mut client) = start(&wl.schema, persisted_config(&dir));
    let mut acked: BTreeMap<SubId, &Subscription> = BTreeMap::new();
    for sub in &wl.subs[..40] {
        client.subscribe(sub, &wl.schema).unwrap();
        acked.insert(sub.id(), sub);
    }

    failpoint::arm("colstore.block.write", FailAction::Stall(800), Some(1));
    let addr = server.local_addr().to_string();
    let snap = std::thread::spawn(move || {
        let mut c2 = BrokerClient::connect(&addr).unwrap();
        c2.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        c2.snapshot().unwrap()
    });
    // Let the snapshot thread reach the stalled block write, then push
    // churn through while it sleeps there.
    std::thread::sleep(Duration::from_millis(120));
    for sub in &wl.subs[40..] {
        client.subscribe(sub, &wl.schema).unwrap();
        acked.insert(sub.id(), sub);
    }
    assert!(
        !snap.is_finished(),
        "churn acks were serialized behind the snapshot's compress+write phase"
    );
    let reply = snap.join().unwrap();
    assert!(reply.contains("snapshot"), "{reply}");
    failpoint::reset();

    drop(client);
    server.abort();
    // The rotation after the write retains the churn frames that landed
    // while it was in flight, so every ack survives the crash.
    let _ = assert_restored_agrees(&wl, &dir, &acked);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Subscribes only the workload subs that route to a single partition, so
/// the next incremental pass sees a strict-subset dirty set and writes a
/// delta instead of falling back to a full.
fn subscribe_one_partition<'a>(
    client: &mut BrokerClient,
    wl: &'a apcm_workload::Workload,
    subs: &'a [Subscription],
    shards: usize,
    acked: &mut BTreeMap<SubId, &'a Subscription>,
) -> usize {
    let target = apcm_server::route_partition(subs[0].id(), shards);
    let mut n = 0;
    for sub in subs {
        if apcm_server::route_partition(sub.id(), shards) == target {
            client.subscribe(sub, &wl.schema).unwrap();
            acked.insert(sub.id(), sub);
            n += 1;
        }
    }
    n
}

#[test]
fn corrupt_delta_falls_back_to_chain_prefix_plus_log() {
    let _guard = lock();
    let wl = WorkloadSpec::new(90).seed(0xde17).build();
    let dir = tmpdir("bad_delta");
    failpoint::reset();

    let (server, mut client) = start(&wl.schema, persisted_config(&dir));
    let mut acked: BTreeMap<SubId, &Subscription> = BTreeMap::new();
    for sub in &wl.subs[..30] {
        client.subscribe(sub, &wl.schema).unwrap();
        acked.insert(sub.id(), sub);
    }
    client.snapshot().unwrap(); // full: starts the chain, rotates the log

    let (first, second) = wl.subs[30..].split_at(30);
    let n1 = subscribe_one_partition(&mut client, &wl, first, 3, &mut acked);
    assert!(n1 >= 4, "workload routed too few subs to one partition");
    let outcome = server.snapshot_incremental().unwrap();
    assert!(outcome.delta, "expected a delta snapshot, got a full");
    let n2 = subscribe_one_partition(&mut client, &wl, second, 3, &mut acked);
    assert!(n2 >= 4);
    let outcome = server.snapshot_incremental().unwrap();
    assert!(outcome.delta);

    drop(client);
    server.abort();

    // Bit-rot the second delta. Recovery must keep the full + delta-1
    // prefix and heal the suffix from the churn log — deltas never rotate
    // it, so the log still covers everything past the full.
    let path = dir.join("snapshot-delta-2.col");
    let mut data = std::fs::read(&path).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0x40;
    std::fs::write(&path, &data).unwrap();

    let stats = assert_restored_agrees(&wl, &dir, &acked);
    assert!(stats["recovery_deltas_dropped"] >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A delta must actually carry its partitions' rows — not lean on log
/// replay. Deleting the churn log after a full+delta pair must still
/// restore the union.
#[test]
fn delta_snapshot_restores_without_the_log() {
    let _guard = lock();
    let wl = WorkloadSpec::new(60).seed(0xd317).build();
    let dir = tmpdir("delta_no_log");
    failpoint::reset();

    let (server, mut client) = start(&wl.schema, persisted_config(&dir));
    let mut acked: BTreeMap<SubId, &Subscription> = BTreeMap::new();
    for sub in &wl.subs[..30] {
        client.subscribe(sub, &wl.schema).unwrap();
        acked.insert(sub.id(), sub);
    }
    client.snapshot().unwrap();
    let n = subscribe_one_partition(&mut client, &wl, &wl.subs[30..], 3, &mut acked);
    assert!(n >= 4);
    let outcome = server.snapshot_incremental().unwrap();
    assert!(outcome.delta, "expected a delta snapshot, got a full");

    drop(client);
    server.abort();
    std::fs::remove_file(dir.join("churn.log")).unwrap();

    let stats = assert_restored_agrees(&wl, &dir, &acked);
    assert_eq!(stats["recovery_log_applied"], 0);
    assert_eq!(stats["recovery_deltas_dropped"], 0);
    let _ = std::fs::remove_dir_all(&dir);
}
