//! Primary/follower replication over loopback TCP: churn-log shipping,
//! snapshot bootstrap, the seq handshake's edge cases, role flips, and
//! injected stream faults.
//!
//! Failpoints are a process-global registry, so tests that arm them
//! serialize on [`lock`].

use apcm_bexpr::{Schema, SubId, Subscription};
use apcm_server::persist::failpoint::{self, FailAction};
use apcm_server::persist::log::{render_frame, ChurnOp};
use apcm_server::{
    BrokerClient, EngineChoice, PersistConfig, Role, Server, ServerConfig, ServerStats,
    SnapshotFormat,
};
use apcm_workload::WorkloadSpec;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apcm_repl_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn persisted_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        shards: 2,
        engine: EngineChoice::Apcm,
        window: 32,
        flush_interval: Duration::from_millis(5),
        maintenance_interval: Duration::from_millis(50),
        repl_ack_every: 4,
        persist: Some(PersistConfig {
            snapshot_interval: None,
            retry_backoff: Duration::from_millis(20),
            ..PersistConfig::new(dir)
        }),
        ..ServerConfig::default()
    }
}

fn replica_config(dir: &Path, primary: &str) -> ServerConfig {
    ServerConfig {
        replica_of: Some(primary.to_string()),
        ..persisted_config(dir)
    }
}

fn start(schema: &Schema, config: ServerConfig) -> (Server, BrokerClient) {
    let server = Server::start(schema.clone(), config, "127.0.0.1:0").unwrap();
    let client = BrokerClient::connect(&server.local_addr().to_string()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    (server, client)
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

fn oracle_rows(subs: &[&Subscription], events: &[apcm_bexpr::Event]) -> Vec<Vec<SubId>> {
    events
        .iter()
        .map(|ev| {
            let mut row: Vec<SubId> = subs
                .iter()
                .filter(|s| s.matches(ev))
                .map(|s| s.id())
                .collect();
            row.sort_unstable();
            row
        })
        .collect()
}

#[test]
fn replica_converges_live_and_refuses_churn() {
    let wl = WorkloadSpec::new(60).seed(0x5e11).build();
    let (primary, mut pc) = start(&wl.schema, persisted_config(&tmpdir("conv_p")));
    for sub in &wl.subs[..40] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }

    let (replica, mut rc) = start(
        &wl.schema,
        replica_config(&tmpdir("conv_r"), &primary.local_addr().to_string()),
    );
    assert!(matches!(replica.role(), Role::Replica { .. }));
    wait_until("initial catch-up", Duration::from_secs(10), || {
        replica.current_seq() == primary.current_seq()
    });
    assert_eq!(replica.engine().len(), 40);

    // Live churn after the handshake streams through the same connection.
    for sub in &wl.subs[40..] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }
    for sub in &wl.subs[..10] {
        pc.unsubscribe(sub.id()).unwrap();
    }
    wait_until("live catch-up", Duration::from_secs(10), || {
        replica.current_seq() == primary.current_seq()
    });
    assert_eq!(replica.engine().len(), 50);

    // The replica matches exactly what the primary matches.
    let events = wl.events(48);
    let live: Vec<&Subscription> = wl.subs[10..].iter().collect();
    let expect = oracle_rows(&live, &events);
    for (who, client) in [("primary", &mut pc), ("replica", &mut rc)] {
        let rows = client.publish_batch(&events, &wl.schema).unwrap();
        for (seq, row) in &rows {
            assert_eq!(row, &expect[*seq as usize], "{who} event {seq}");
        }
    }

    // Client churn on the replica is refused, and the refusal is the
    // retryable kind.
    rc.set_churn_retry(0, Duration::ZERO);
    let err = rc.subscribe(&wl.subs[0], &wl.schema).unwrap_err();
    assert!(err.to_string().contains("read-only replica"), "{err}");
    let err = rc.unsubscribe(wl.subs[20].id()).unwrap_err();
    assert!(err.to_string().contains("read-only replica"), "{err}");

    // The primary's stats expose the stream; the replica's its role.
    let pstats = pc.stats().unwrap();
    assert_eq!(pstats["repl_followers"], 1);
    // Live records shipped after the handshake: 20 subs + 10 unsubs.
    assert!(pstats["repl_records_sent"] >= 30);
    let rstats = rc.stats().unwrap();
    assert_eq!(rstats["role_replica"], 1);
    assert_eq!(rstats["repl_connected"], 1);
    assert_eq!(rstats["repl_applied_seq"], primary.current_seq());

    rc.quit().unwrap();
    pc.quit().unwrap();
    replica.shutdown();
    primary.shutdown();
}

#[test]
fn rotation_gap_forces_snapshot_bootstrap() {
    let wl = WorkloadSpec::new(50).seed(0xb007).build();
    let (primary, mut pc) = start(&wl.schema, persisted_config(&tmpdir("rot_p")));
    for sub in &wl.subs[..30] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }
    // Rotation advances base_seq past a brand-new follower's from_seq=0,
    // so the log tail cannot serve it.
    pc.snapshot().unwrap();
    for sub in &wl.subs[30..] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }

    let (replica, mut rc) = start(
        &wl.schema,
        replica_config(&tmpdir("rot_r"), &primary.local_addr().to_string()),
    );
    wait_until("bootstrap catch-up", Duration::from_secs(10), || {
        replica.current_seq() == primary.current_seq()
            && ServerStats::get(&replica.stats().repl_bootstraps) == 1
    });
    assert_eq!(replica.engine().len(), 50);
    // The primary (colstore format by default) served the bootstrap as
    // compressed blocks and accounted the bytes it shipped.
    assert!(ServerStats::get(&primary.stats().repl_bootstrap_bytes) > 0);

    rc.quit().unwrap();
    pc.quit().unwrap();
    replica.shutdown();
    primary.shutdown();
}

/// Same rotation gap against a primary pinned to the text snapshot
/// format: the follower always offers `v2`, and a text primary answers
/// with the plain per-frame bootstrap — both sides stay compatible.
#[test]
fn rotation_gap_bootstraps_from_text_format_primary() {
    let wl = WorkloadSpec::new(50).seed(0x7e87).build();
    let mut config = persisted_config(&tmpdir("rot_text_p"));
    config.persist.as_mut().unwrap().format = SnapshotFormat::Text;
    let (primary, mut pc) = start(&wl.schema, config);
    for sub in &wl.subs[..30] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }
    pc.snapshot().unwrap();
    for sub in &wl.subs[30..] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }

    let (replica, mut rc) = start(
        &wl.schema,
        replica_config(&tmpdir("rot_text_r"), &primary.local_addr().to_string()),
    );
    wait_until("text bootstrap catch-up", Duration::from_secs(10), || {
        replica.current_seq() == primary.current_seq()
            && ServerStats::get(&replica.stats().repl_bootstraps) == 1
    });
    assert_eq!(replica.engine().len(), 50);
    assert!(ServerStats::get(&primary.stats().repl_bootstrap_bytes) > 0);

    rc.quit().unwrap();
    pc.quit().unwrap();
    replica.shutdown();
    primary.shutdown();
}

#[test]
fn follower_ahead_with_shared_prefix_truncates_instead_of_rebootstrap() {
    let wl = WorkloadSpec::new(40).seed(0xa4ed).build();
    // Grow a log to seq 40 in dir, then retire that server: the dir now
    // holds state *ahead* of the fresh primary below — but the first 12
    // records are byte-identical to the primary's (same subs, same
    // order), so the suffix is a covered, unacked leftover.
    let stale_dir = tmpdir("ahead_stale");
    {
        let (old, mut oc) = start(&wl.schema, persisted_config(&stale_dir));
        for sub in &wl.subs {
            oc.subscribe(sub, &wl.schema).unwrap();
        }
        oc.quit().unwrap();
        old.shutdown();
    }

    let (primary, mut pc) = start(&wl.schema, persisted_config(&tmpdir("ahead_p")));
    for sub in &wl.subs[..12] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }

    // The replica recovers seq 40 locally, handshakes with from_seq=40
    // against a primary at seq 12. The primary offers the truncate form
    // with its head frame's CRC; the replica's own frame 12 matches, so
    // it discards the suffix locally and tails — zero state transfer,
    // no wholesale bootstrap.
    let (replica, mut rc) = start(
        &wl.schema,
        replica_config(&stale_dir, &primary.local_addr().to_string()),
    );
    // The truncate counter lives in the wait condition, not a trailing
    // assert: `current_seq` blocks on the same lock the rewind holds, so
    // a poll can wake the instant the swap is visible and race ahead of
    // the replication thread's counter increment.
    wait_until("covered-suffix rewind", Duration::from_secs(10), || {
        replica.current_seq() == primary.current_seq()
            && replica.engine().len() == 12
            && ServerStats::get(&replica.stats().repl_truncates) == 1
    });
    assert_eq!(ServerStats::get(&replica.stats().repl_bootstraps), 0);

    // And it now tracks the primary's timeline.
    for sub in &wl.subs[12..20] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }
    wait_until("post-rewind tail", Duration::from_secs(10), || {
        replica.engine().len() == 20
    });

    let events = wl.events(32);
    let live: Vec<&Subscription> = wl.subs[..20].iter().collect();
    let expect = oracle_rows(&live, &events);
    let rows = rc.publish_batch(&events, &wl.schema).unwrap();
    for (seq, row) in &rows {
        assert_eq!(row, &expect[*seq as usize], "event {seq}");
    }

    rc.quit().unwrap();
    pc.quit().unwrap();
    replica.shutdown();
    primary.shutdown();
}

#[test]
fn follower_ahead_with_divergent_history_rebootstraps() {
    let wl = WorkloadSpec::new(40).seed(0xa4ee).build();
    // Same ahead-of-primary shape, but the stale dir's history was built
    // in *reverse* order: its frame at the primary's head seq names a
    // different subscription, so the truncate CRC probe must fail and
    // the follower must fall back to the wholesale bootstrap.
    let stale_dir = tmpdir("divergent_stale");
    {
        let (old, mut oc) = start(&wl.schema, persisted_config(&stale_dir));
        for sub in wl.subs.iter().rev() {
            oc.subscribe(sub, &wl.schema).unwrap();
        }
        oc.quit().unwrap();
        old.shutdown();
    }

    let (primary, mut pc) = start(&wl.schema, persisted_config(&tmpdir("divergent_p")));
    for sub in &wl.subs[..12] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }

    let (replica, mut rc) = start(
        &wl.schema,
        replica_config(&stale_dir, &primary.local_addr().to_string()),
    );
    wait_until("divergent re-bootstrap", Duration::from_secs(10), || {
        replica.current_seq() == primary.current_seq()
            && replica.engine().len() == 12
            && ServerStats::get(&replica.stats().repl_bootstraps) == 1
    });
    assert_eq!(ServerStats::get(&replica.stats().repl_truncates), 0);

    let events = wl.events(32);
    let live: Vec<&Subscription> = wl.subs[..12].iter().collect();
    let expect = oracle_rows(&live, &events);
    let rows = rc.publish_batch(&events, &wl.schema).unwrap();
    for (seq, row) in &rows {
        assert_eq!(row, &expect[*seq as usize], "event {seq}");
    }

    rc.quit().unwrap();
    pc.quit().unwrap();
    replica.shutdown();
    primary.shutdown();
}

/// The double-failover regression: A leads, B takes over, A returns with
/// an unacked suffix, then leadership comes back to A. Each hand-back
/// must reconcile by covered-suffix truncation (the histories share every
/// acked record) — never by wholesale re-bootstrap.
#[test]
fn double_failover_a_b_a_truncates_never_rebootstraps() {
    let wl = WorkloadSpec::new(40).seed(0xabab).build();
    let (a, mut ac) = start(&wl.schema, persisted_config(&tmpdir("aba_a")));
    for sub in &wl.subs[..20] {
        ac.subscribe(sub, &wl.schema).unwrap();
    }
    let (b, mut bc) = start(
        &wl.schema,
        replica_config(&tmpdir("aba_b"), &a.local_addr().to_string()),
    );
    wait_until("b catches up", Duration::from_secs(10), || {
        b.current_seq() == a.current_seq()
    });

    // Failover to B... but A (still primary, "partitioned") takes five
    // more records nobody acked through B's timeline. The churn waits
    // for B's puller stream to actually drop first — otherwise the dying
    // stream can race a record or two over to B.
    bc.promote().unwrap();
    wait_until("b's puller detaches", Duration::from_secs(10), || {
        ServerStats::get(&a.stats().repl_followers) == 0
    });
    for sub in &wl.subs[20..25] {
        ac.subscribe(sub, &wl.schema).unwrap();
    }
    assert_eq!(a.current_seq(), 25);
    assert_eq!(b.current_seq(), 20);

    // A rejoins as B's follower: from_seq=25 against B at 20, shared
    // history up to 20 — the suffix is covered, so A rewinds in place.
    ac.demote(&b.local_addr().to_string()).unwrap();
    wait_until("a rewinds onto b", Duration::from_secs(10), || {
        a.current_seq() == b.current_seq()
            && a.engine().len() == 20
            && ServerStats::get(&a.stats().repl_truncates) == 1
    });
    assert_eq!(ServerStats::get(&a.stats().repl_bootstraps), 0);

    // B meanwhile leads on: churn it forward, A tails the new timeline.
    for sub in &wl.subs[25..32] {
        bc.subscribe(sub, &wl.schema).unwrap();
    }
    wait_until("a tails b's churn", Duration::from_secs(10), || {
        a.current_seq() == b.current_seq() && a.engine().len() == 27
    });

    // Failover back: A promotes at B's head, B rejoins under A. The
    // timelines are identical now, so B needs neither rewind nor
    // bootstrap — it just tails.
    ac.promote().unwrap();
    bc.demote(&a.local_addr().to_string()).unwrap();
    for sub in &wl.subs[32..] {
        ac.subscribe(sub, &wl.schema).unwrap();
    }
    wait_until("b follows a again", Duration::from_secs(10), || {
        b.current_seq() == a.current_seq() && b.engine().len() == 35
    });
    assert_eq!(ServerStats::get(&b.stats().repl_bootstraps), 0);
    assert_eq!(ServerStats::get(&b.stats().repl_truncates), 0);

    // Both ends answer byte-identical rows for the surviving catalog.
    let events = wl.events(32);
    let live: Vec<&Subscription> = wl.subs[..20].iter().chain(&wl.subs[25..]).collect();
    let expect = oracle_rows(&live, &events);
    for (who, client) in [("a", &mut ac), ("b", &mut bc)] {
        let rows = client.publish_batch(&events, &wl.schema).unwrap();
        for (seq, row) in &rows {
            assert_eq!(row, &expect[*seq as usize], "{who} event {seq}");
        }
    }

    ac.quit().unwrap();
    bc.quit().unwrap();
    a.shutdown();
    b.shutdown();
}

#[test]
fn promote_demote_round_trip_swaps_roles() {
    let wl = WorkloadSpec::new(30).seed(0xf11b).build();
    let (a, mut ac) = start(&wl.schema, persisted_config(&tmpdir("swap_a")));
    for sub in &wl.subs[..20] {
        ac.subscribe(sub, &wl.schema).unwrap();
    }
    let (b, mut bc) = start(
        &wl.schema,
        replica_config(&tmpdir("swap_b"), &a.local_addr().to_string()),
    );
    wait_until("b catches up", Duration::from_secs(10), || {
        b.current_seq() == a.current_seq()
    });

    // Promote B: it starts accepting churn immediately.
    let seq = bc.promote().unwrap();
    assert_eq!(seq, a.current_seq());
    assert!(matches!(b.role(), Role::Primary));
    for sub in &wl.subs[20..] {
        bc.subscribe(sub, &wl.schema).unwrap();
    }
    assert_eq!(b.engine().len(), 30);

    // Demote A under B: it refuses churn and pulls B's extra churn over
    // the log tail (its from_seq sits inside B's retained log).
    ac.demote(&b.local_addr().to_string()).unwrap();
    assert!(matches!(a.role(), Role::Replica { .. }));
    wait_until("a follows b", Duration::from_secs(10), || {
        a.current_seq() == b.current_seq()
    });
    assert_eq!(a.engine().len(), 30);
    assert_eq!(ServerStats::get(&a.stats().repl_bootstraps), 0);
    ac.set_churn_retry(0, Duration::ZERO);
    let err = ac.subscribe(&wl.subs[0], &wl.schema).unwrap_err();
    assert!(err.to_string().contains("read-only replica"), "{err}");

    // Role reports agree with the flip.
    let report = bc.role().unwrap();
    assert!(report.primary);
    assert_eq!(report.connected, 1); // one follower: A
    let report = ac.role().unwrap();
    assert!(!report.primary);
    assert_eq!(report.following, Some(b.local_addr().to_string()));

    // Promote is idempotent: the second command is a no-op, not a recount.
    bc.promote().unwrap();
    assert_eq!(ServerStats::get(&b.stats().promotions), 1);

    ac.quit().unwrap();
    bc.quit().unwrap();
    a.shutdown();
    b.shutdown();
}

/// A hand-rolled "primary" that serves scripted `REPLICATE` responses, so
/// the follower's CRC handling can be probed with byte-exact streams.
fn scripted_primary(
    schema: Schema,
    subs: Vec<Subscription>,
) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        let mut serving = 0usize;
        // Conn 1: one corrupt frame — the follower must drop the stream.
        // Conn 2: the good frames, then hold the stream open briefly.
        while serving < 2 {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            serving += 1;
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("REPLICATE "), "{line}");
            let mut w = stream.try_clone().unwrap();
            if serving == 1 {
                let good = render_frame(1, &ChurnOp::Sub(&subs[0]), &schema);
                // Flip a CRC nibble: framed, parseable shape, bad checksum.
                let corrupt = match good.strip_prefix('0') {
                    Some(rest) => format!("1{rest}"),
                    None => format!("0{}", &good[1..]),
                };
                w.write_all(format!("+OK replicate log 1\n{corrupt}\n").as_bytes())
                    .unwrap();
                // Follower aborts; wait for its EOF.
                let mut rest = String::new();
                while reader.read_line(&mut rest).map(|n| n > 0).unwrap_or(false) {
                    rest.clear();
                }
            } else {
                let mut body = format!("+OK replicate log {}\n", subs.len());
                for (i, sub) in subs.iter().enumerate() {
                    body.push_str(&render_frame(1 + i as u64, &ChurnOp::Sub(sub), &schema));
                    body.push('\n');
                }
                w.write_all(body.as_bytes()).unwrap();
                std::thread::sleep(Duration::from_millis(400));
            }
        }
    });
    (addr, handle)
}

#[test]
fn crc_bad_streamed_record_is_counted_and_never_applied() {
    let wl = WorkloadSpec::new(4).seed(0xcbad).build();
    let (addr, fake) = scripted_primary(wl.schema.clone(), wl.subs.clone());

    let (replica, rc) = start(&wl.schema, replica_config(&tmpdir("crc_r"), &addr));
    wait_until("good frames applied", Duration::from_secs(10), || {
        replica.current_seq() == wl.subs.len() as u64
    });
    // The corrupt record was counted, never applied, and the reconnect
    // refetched the same sequence cleanly.
    assert!(ServerStats::get(&replica.stats().repl_crc_skipped) >= 1);
    assert!(ServerStats::get(&replica.stats().repl_reconnects) >= 1);
    assert_eq!(replica.engine().len(), wl.subs.len());

    drop(rc);
    replica.shutdown();
    fake.join().unwrap();
}

/// A scripted primary that answers `REPLICATE` with a colstore bootstrap:
/// conn 1 ships a block whose CRC is wrong — the follower must drop the
/// stream and apply **nothing** — and conn 2 ships the same blocks intact.
fn scripted_colstore_primary(
    schema: Schema,
    subs: Vec<Subscription>,
) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        let rows: Vec<apcm_colstore::Row> = subs
            .iter()
            .map(|s| apcm_colstore::Row {
                id: u64::from(s.id().0),
                atoms: s
                    .predicates()
                    .iter()
                    .map(|p| p.display(&schema).to_string())
                    .collect(),
            })
            .collect();
        let blocks: Vec<apcm_colstore::CompressedBlock> =
            apcm_colstore::prepare_partition(0, &rows, apcm_colstore::DEFAULT_BLOCK_ROWS)
                .unwrap()
                .into_iter()
                .map(apcm_colstore::compress_block)
                .collect();
        let header = format!(
            "+OK replicate colstore {} {} {}\n",
            blocks.len(),
            subs.len(),
            subs.len()
        );
        let block_line = |b: &apcm_colstore::CompressedBlock, crc: u32| {
            format!(
                "BLOCK {} {} {} {crc:08x} {}\n",
                b.partition,
                b.rows,
                b.raw_len,
                apcm_colstore::b64::encode(&b.data)
            )
        };
        let mut serving = 0usize;
        while serving < 2 {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            serving += 1;
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("REPLICATE "), "{line}");
            let mut w = stream.try_clone().unwrap();
            if serving == 1 {
                // Framed, parseable, wrong checksum: the follower must
                // refuse the whole bootstrap, not skip one block.
                let body = format!("{header}{}", block_line(&blocks[0], blocks[0].crc ^ 1));
                w.write_all(body.as_bytes()).unwrap();
                // Follower aborts; wait for its EOF.
                let mut rest = String::new();
                while reader.read_line(&mut rest).map(|n| n > 0).unwrap_or(false) {
                    rest.clear();
                }
            } else {
                let mut body = header.clone();
                for b in &blocks {
                    body.push_str(&block_line(b, b.crc));
                }
                w.write_all(body.as_bytes()).unwrap();
                std::thread::sleep(Duration::from_millis(400));
            }
        }
    });
    (addr, handle)
}

#[test]
fn corrupt_colstore_block_forces_clean_refetch() {
    let wl = WorkloadSpec::new(6).seed(0xcb10).build();
    let (addr, fake) = scripted_colstore_primary(wl.schema.clone(), wl.subs.clone());

    let (replica, rc) = start(&wl.schema, replica_config(&tmpdir("colcrc_r"), &addr));
    wait_until(
        "colstore bootstrap applied",
        Duration::from_secs(10),
        || replica.current_seq() == wl.subs.len() as u64,
    );
    // The corrupt block killed the whole first bootstrap: nothing from it
    // was applied, and the reconnect refetched every block.
    assert!(ServerStats::get(&replica.stats().repl_crc_skipped) >= 1);
    assert!(ServerStats::get(&replica.stats().repl_reconnects) >= 1);
    assert_eq!(ServerStats::get(&replica.stats().repl_bootstraps), 1);
    assert_eq!(replica.engine().len(), wl.subs.len());

    drop(rc);
    replica.shutdown();
    fake.join().unwrap();
}

/// Ten frames shipped in one burst land in the follower's read buffer
/// together, so the drain-boundary ack logic must coalesce — `REPLACK`
/// once per drained run (capped by `repl_ack_every`), not once per
/// record.
#[test]
fn burst_of_frames_is_acked_pipelined() {
    let wl = WorkloadSpec::new(10).seed(0x9191).build();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let schema = wl.schema.clone();
    let subs = wl.subs.clone();
    let fake = std::thread::spawn(move || {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("REPLICATE "), "{line}");
        // The whole backlog in one write: header plus all ten frames.
        let mut body = format!("+OK replicate log {}\n", subs.len());
        for (i, sub) in subs.iter().enumerate() {
            body.push_str(&render_frame(1 + i as u64, &ChurnOp::Sub(sub), &schema));
            body.push('\n');
        }
        stream
            .try_clone()
            .unwrap()
            .write_all(body.as_bytes())
            .unwrap();
        // Drain acks until the head is covered, then hang up.
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {
                    if line.trim() == format!("REPLACK {}", subs.len()) {
                        std::thread::sleep(Duration::from_millis(200));
                        return;
                    }
                }
            }
        }
    });

    let (replica, rc) = start(&wl.schema, replica_config(&tmpdir("pipe_r"), &addr));
    wait_until("burst applied", Duration::from_secs(10), || {
        replica.current_seq() == wl.subs.len() as u64
    });
    // repl_ack_every is 4: a fully buffered ten-frame burst acks at 4, 8
    // and the drain boundary — each line covering several records.
    assert!(
        ServerStats::get(&replica.stats().replacks_pipelined) >= 1,
        "expected at least one coalesced ack"
    );
    assert_eq!(replica.engine().len(), wl.subs.len());

    drop(rc);
    replica.shutdown();
    fake.join().unwrap();
}

/// The `repl.ack.delay` failpoint: `Error` swallows `REPLACK` lines at
/// the primary and `Stall` holds its handler — either way replication
/// itself keeps applying, and the acked horizon heals once the failpoint
/// drains (the follower's idle keepalive re-sends its cursor).
#[test]
fn ack_delay_failpoint_delays_acked_horizon_not_replication() {
    let _guard = lock();
    failpoint::reset();
    let wl = WorkloadSpec::new(30).seed(0xacde).build();
    let (primary, mut pc) = start(&wl.schema, persisted_config(&tmpdir("ackd_p")));
    for sub in &wl.subs[..10] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }
    let (replica, _rc) = start(
        &wl.schema,
        replica_config(&tmpdir("ackd_r"), &primary.local_addr().to_string()),
    );
    wait_until("baseline catch-up", Duration::from_secs(10), || {
        replica.current_seq() == primary.current_seq()
    });
    wait_until("baseline acked", Duration::from_secs(10), || {
        pc.role().map(|r| r.acked == 10).unwrap_or(false)
    });

    // Drop the next acks: the follower still applies everything.
    failpoint::arm("repl.ack.delay", FailAction::Error, Some(3));
    for sub in &wl.subs[10..20] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }
    wait_until(
        "applies despite dropped acks",
        Duration::from_secs(10),
        || replica.current_seq() == primary.current_seq(),
    );
    wait_until("acked horizon heals", Duration::from_secs(10), || {
        pc.role().map(|r| r.acked == 20).unwrap_or(false)
    });

    // Stall: the ack handler sleeps, nothing is lost.
    failpoint::arm("repl.ack.delay", FailAction::Stall(30), Some(2));
    for sub in &wl.subs[20..] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }
    wait_until(
        "applies through stalled acks",
        Duration::from_secs(10),
        || {
            replica.current_seq() == primary.current_seq()
                && pc.role().map(|r| r.acked == 30).unwrap_or(false)
        },
    );
    failpoint::reset();

    pc.quit().unwrap();
    replica.shutdown();
    primary.shutdown();
}

#[test]
fn stream_faults_heal_by_reconnect() {
    let _guard = lock();
    let wl = WorkloadSpec::new(80).seed(0xfa17).build();
    let (primary, mut pc) = start(&wl.schema, persisted_config(&tmpdir("fault_p")));
    for sub in &wl.subs[..10] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }
    let (replica, _rc) = start(
        &wl.schema,
        replica_config(&tmpdir("fault_r"), &primary.local_addr().to_string()),
    );
    wait_until("baseline catch-up", Duration::from_secs(10), || {
        replica.current_seq() == primary.current_seq()
    });

    failpoint::reset();
    // Interleave churn with injected stream faults: a full drop, a torn
    // frame (prefix shipped, then cut), and a stall. Acked churn must
    // survive all of them via reconnect + log-tail catch-up.
    failpoint::arm("repl.stream.send", FailAction::Error, Some(1));
    for sub in &wl.subs[10..30] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }
    wait_until("drop healed", Duration::from_secs(10), || {
        replica.current_seq() == primary.current_seq()
    });

    failpoint::arm("repl.stream.send", FailAction::TornWrite(5), Some(1));
    for sub in &wl.subs[30..55] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }
    wait_until("torn frame healed", Duration::from_secs(10), || {
        replica.current_seq() == primary.current_seq()
    });

    failpoint::arm("repl.stream.send", FailAction::Stall(40), Some(2));
    for sub in &wl.subs[55..] {
        pc.subscribe(sub, &wl.schema).unwrap();
    }
    wait_until("stall drained", Duration::from_secs(10), || {
        replica.current_seq() == primary.current_seq()
    });
    failpoint::reset();

    assert_eq!(replica.engine().len(), 80);
    assert!(ServerStats::get(&replica.stats().repl_reconnects) >= 2);

    // Byte-level check: the follower's log is a verbatim mirror.
    let events = wl.events(40);
    let live: Vec<&Subscription> = wl.subs.iter().collect();
    let expect = oracle_rows(&live, &events);
    let mut rc = BrokerClient::connect(&replica.local_addr().to_string()).unwrap();
    let rows = rc.publish_batch(&events, &wl.schema).unwrap();
    for (seq, row) in &rows {
        assert_eq!(row, &expect[*seq as usize], "event {seq}");
    }

    rc.quit().unwrap();
    pc.quit().unwrap();
    replica.shutdown();
    primary.shutdown();
}
