//! End-to-end broker test over a loopback socket: two client connections,
//! 120 live subscriptions, a BATCH publish, agreement with a sequential
//! scan oracle, STATS accounting, and graceful shutdown.

use apcm_bexpr::{SubId, Subscription};
use apcm_server::{BrokerClient, EngineChoice, Server, ServerConfig};
use apcm_workload::WorkloadSpec;
use std::time::Duration;

const N_SUBS: usize = 120;
const N_EVENTS: usize = 96;

fn workload() -> apcm_workload::Workload {
    WorkloadSpec::new(N_SUBS).seed(0x100b).build()
}

/// Single-threaded brute-force oracle over the subscriptions live at
/// publish time.
fn oracle_rows(subs: &[Subscription], events: &[apcm_bexpr::Event]) -> Vec<Vec<SubId>> {
    events
        .iter()
        .map(|ev| {
            let mut row: Vec<SubId> = subs
                .iter()
                .filter(|s| s.matches(ev))
                .map(|s| s.id())
                .collect();
            row.sort_unstable();
            row
        })
        .collect()
}

#[test]
fn loopback_batch_agrees_with_oracle() {
    let wl = workload();
    let config = ServerConfig {
        shards: 3,
        engine: EngineChoice::Apcm,
        window: 32,
        flush_interval: Duration::from_millis(5),
        maintenance_interval: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let server = Server::start(wl.schema.clone(), config, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // Two connections: subscriptions are split between them, so EVENT
    // notifications cross connections while RESULT rows go to the publisher.
    let mut sub_conn = BrokerClient::connect(&addr).unwrap();
    let mut pub_conn = BrokerClient::connect(&addr).unwrap();
    sub_conn
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    pub_conn
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let (half_a, half_b) = wl.subs.split_at(N_SUBS / 2);
    for sub in half_a {
        sub_conn.subscribe(sub, &wl.schema).unwrap();
    }
    for sub in half_b {
        pub_conn.subscribe(sub, &wl.schema).unwrap();
    }

    let events = wl.events(N_EVENTS);
    let results = pub_conn.publish_batch(&events, &wl.schema).unwrap();
    assert_eq!(results.len(), N_EVENTS);

    let expect = oracle_rows(&wl.subs, &events);
    for (seq, row) in &results {
        assert_eq!(
            row, &expect[*seq as usize],
            "event {seq} disagreed with the scan oracle"
        );
    }

    // STATS reflects the traffic.
    let stats = pub_conn.stats().unwrap();
    assert_eq!(stats["events_in"], N_EVENTS as u64);
    assert_eq!(stats["events_matched"], N_EVENTS as u64);
    assert_eq!(stats["subs_added"], N_SUBS as u64);
    assert_eq!(stats["conns_active"], 2);
    assert_eq!(stats["conns_total"], 2);
    let total_matches: u64 = expect.iter().map(|r| r.len() as u64).sum();
    assert_eq!(stats["matches"], total_matches);
    let sharded: u64 = (0..3).map(|i| stats[&format!("shard_{i}_subs")]).sum();
    assert_eq!(sharded, N_SUBS as u64);

    sub_conn.quit().unwrap();
    pub_conn.quit().unwrap();

    // Graceful shutdown returns the final stats render.
    let final_stats = server.shutdown();
    assert!(final_stats.contains("events_in 96"));
    assert!(final_stats.contains("engine apcm"));
    assert!(final_stats.contains("shards 3"));
}

#[test]
fn live_churn_and_error_replies() {
    let wl = workload();
    let config = ServerConfig {
        shards: 2,
        engine: EngineChoice::Apcm,
        window: 16,
        flush_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let server = Server::start(wl.schema.clone(), config, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let mut client = BrokerClient::connect(&addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    client.ping().unwrap();
    for sub in &wl.subs[..40] {
        client.subscribe(sub, &wl.schema).unwrap();
    }
    // Re-subscribing the byte-identical expression is an ownership
    // takeover (+OK claimed), not an error; a *different* expression for a
    // live id gets the structured duplicate error, and unknown
    // unsubscribes stay structured errors too.
    client
        .send_line(&format!(
            "SUB {} {}",
            wl.subs[0].id().0,
            wl.subs[0].display(&wl.schema)
        ))
        .unwrap();
    let line = client.read_line().unwrap().unwrap();
    assert_eq!(line, format!("+OK claimed {}", wl.subs[0].id().0), "{line}");
    client
        .send_line(&format!("SUB {} a0 >= 0", wl.subs[0].id().0))
        .unwrap();
    let line = client.read_line().unwrap().unwrap();
    assert_eq!(line, format!("-ERR duplicate {}", wl.subs[0].id().0));
    // CLAIM works for live ids and errors for unknown ones.
    client.claim(wl.subs[1].id()).unwrap();
    client.send_line("CLAIM 9999").unwrap();
    let line = client.read_line().unwrap().unwrap();
    assert!(line.starts_with("-ERR unknown subscription"), "{line}");
    client.send_line("UNSUB 9999").unwrap();
    let line = client.read_line().unwrap().unwrap();
    assert!(line.starts_with("-ERR unknown subscription"), "{line}");
    client.send_line("NOSUCH verb").unwrap();
    let line = client.read_line().unwrap().unwrap();
    assert!(line.starts_with("-ERR unknown verb"), "{line}");

    // Unsubscribe half, then matching honours the live set only.
    for sub in &wl.subs[..20] {
        client.unsubscribe(sub.id()).unwrap();
    }
    let events = wl.events(32);
    let results = client.publish_batch(&events, &wl.schema).unwrap();
    let expect = oracle_rows(&wl.subs[20..40], &events);
    for (seq, row) in &results {
        assert_eq!(row, &expect[*seq as usize], "event {seq}");
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats["subs_added"], 40);
    assert_eq!(stats["subs_removed"], 20);
    assert!(stats["protocol_errors"] >= 3);

    drop(client); // disconnect without QUIT; server must still shut down
    let final_stats = server.shutdown();
    assert!(final_stats.contains("subs_removed 20"));
}

#[test]
fn shutdown_with_idle_connections_is_bounded() {
    let wl = workload();
    let server = Server::start(
        wl.schema.clone(),
        ServerConfig {
            shards: 2,
            engine: EngineChoice::Scan,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    // Idle connections blocked in read; shutdown must unblock them.
    let _c1 = BrokerClient::connect(&addr).unwrap();
    let _c2 = BrokerClient::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the accepts land

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = done_tx.send(server.shutdown());
    });
    let rendered = done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("shutdown must complete with idle readers");
    assert!(rendered.contains("conns_total 2"));
}
