//! Baseline matching engines.
//!
//! The paper positions A-PCM against the state of the art in
//! Boolean-expression matching. This crate implements the standard
//! comparators (BE-Tree lives in its own crate, `apcm-betree`):
//!
//! * [`SequentialScan`] — evaluate every expression per event. This is the
//!   floor every index must beat, and the engine whose collapse at millions
//!   of expressions ("36 events/s at 5M") motivates the paper.
//! * [`ParallelScan`] — the same scan fanned out over cores with rayon;
//!   isolates how much of A-PCM's win comes from parallelism alone versus
//!   compression + encoding.
//! * [`CountingMatcher`] — the classic counting algorithm (Yan & García-
//!   Molina): an inverted index from predicate to subscriptions plus a
//!   per-event satisfied-predicate counter with dirty-list reset.
//! * [`KIndex`] — the k-index of Whang et al. (VLDB 2009): subscriptions
//!   partitioned by size with posting lists keyed by `(attribute, value)`;
//!   partitions larger than the event are skipped wholesale.
//!
//! Every engine implements [`apcm_bexpr::Matcher`] and is tested for exact
//! agreement with brute-force evaluation and with each other.

pub mod counting;
pub mod kindex;
pub mod parallel_scan;
pub mod scan;

pub use counting::CountingMatcher;
pub use kindex::KIndex;
pub use parallel_scan::ParallelScan;
pub use scan::SequentialScan;
