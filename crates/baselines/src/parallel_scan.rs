//! Parallel brute-force scan.

use apcm_bexpr::{Event, Matcher, SubId, Subscription};
use rayon::prelude::*;

/// The naive scan parallelized over subscription chunks with rayon.
///
/// Separating "parallelism alone" from "parallelism + compression" is the
/// point of this engine: the paper's speedup decomposes into a ~#cores
/// factor (which this engine gets too) and an algorithmic factor from the
/// encoding and cluster pruning (which it does not).
#[derive(Debug)]
pub struct ParallelScan {
    subs: Vec<Subscription>,
    chunk: usize,
}

impl ParallelScan {
    /// Indexes the corpus with a default chunk size tuned so each rayon task
    /// amortizes its scheduling overhead.
    pub fn new(subs: &[Subscription]) -> Self {
        Self::with_chunk_size(subs, 4096)
    }

    /// Indexes the corpus with an explicit scan chunk size.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    pub fn with_chunk_size(subs: &[Subscription], chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        Self {
            subs: subs.to_vec(),
            chunk,
        }
    }
}

impl Matcher for ParallelScan {
    fn match_event(&self, ev: &Event) -> Vec<SubId> {
        let mut out: Vec<SubId> = self
            .subs
            .par_chunks(self.chunk)
            .flat_map_iter(|chunk| chunk.iter().filter(|s| s.matches(ev)).map(|s| s.id()))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn match_batch(&self, events: &[Event]) -> Vec<Vec<SubId>> {
        // Per-event parallelism beats per-subscription parallelism once the
        // batch is larger than the core count: no fan-in merge per event.
        events
            .par_iter()
            .map(|ev| {
                let mut out: Vec<SubId> = self
                    .subs
                    .iter()
                    .filter(|s| s.matches(ev))
                    .map(|s| s.id())
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "P-SCAN"
    }

    fn len(&self) -> usize {
        self.subs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialScan;
    use apcm_workload::WorkloadSpec;

    #[test]
    fn agrees_with_sequential_scan() {
        let wl = WorkloadSpec::new(500)
            .seed(11)
            .planted_fraction(0.2)
            .build();
        let seq = SequentialScan::new(&wl.subs);
        let par = ParallelScan::with_chunk_size(&wl.subs, 64);
        for ev in wl.events(50) {
            assert_eq!(par.match_event(&ev), seq.match_event(&ev));
        }
    }

    #[test]
    fn batch_agrees_with_per_event() {
        let wl = WorkloadSpec::new(200)
            .seed(12)
            .planted_fraction(0.5)
            .build();
        let par = ParallelScan::new(&wl.subs);
        let events = wl.events(30);
        let batch = par.match_batch(&events);
        for (ev, row) in events.iter().zip(batch.iter()) {
            assert_eq!(row, &par.match_event(ev));
        }
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_panics() {
        let _ = ParallelScan::with_chunk_size(&[], 0);
    }
}
