//! The counting algorithm.

use apcm_bexpr::{BexprError, Event, Matcher, Schema, SubId, Subscription};
use apcm_encoding::PredicateSpace;
use std::sync::Mutex;

/// The classic counting algorithm over the shared predicate space.
///
/// An inverted index maps each event-bitmap bit to the subscriptions that
/// *require* it, plus a second index for the bits that *block* them (broad
/// predicates — see the polarity rules in `apcm_encoding::index`). Per
/// event: encode the event into its bitmap, bump a counter for every
/// subscription on every set bit's required posting list, mark subscriptions
/// on any set bit's blocked list, and report subscriptions whose counter
/// reached their required count unblocked.
///
/// The counter array is corpus-sized but only entries actually touched are
/// reset (dirty-list reset), so per-event cost is proportional to posting
/// hits, not corpus size. The scratch lives behind a [`Mutex`]: counting is
/// evaluated as the paper's sequential baseline, so cross-thread contention
/// is out of scope by design.
#[derive(Debug)]
pub struct CountingMatcher {
    space: PredicateSpace,
    /// Required posting lists: bit → positions into `ids`/`required`.
    postings: Vec<Vec<u32>>,
    /// Blocked posting lists: bit → positions whose subscription is vetoed
    /// when the bit is set.
    blockings: Vec<Vec<u32>>,
    /// Subscription ids by corpus position.
    ids: Vec<SubId>,
    /// Required bits per subscription (match when the counter hits it).
    required: Vec<u32>,
    scratch: Mutex<Scratch>,
}

#[derive(Debug)]
struct Scratch {
    counts: Vec<u32>,
    blocked: Vec<bool>,
    dirty: Vec<u32>,
}

impl CountingMatcher {
    /// Builds the inverted index for a corpus.
    pub fn build(schema: &Schema, subs: &[Subscription]) -> Result<Self, BexprError> {
        let (space, encoded) = PredicateSpace::build(schema, subs)?;
        let mut postings = vec![Vec::new(); space.width()];
        let mut blockings = vec![Vec::new(); space.width()];
        let mut ids = Vec::with_capacity(encoded.len());
        let mut required = Vec::with_capacity(encoded.len());
        for (pos, enc) in encoded.iter().enumerate() {
            ids.push(enc.id);
            required.push(enc.required.len() as u32);
            for &bit in enc.required.ids() {
                postings[bit as usize].push(pos as u32);
            }
            for &bit in enc.blocked.ids() {
                blockings[bit as usize].push(pos as u32);
            }
        }
        let n = ids.len();
        Ok(Self {
            space,
            postings,
            blockings,
            ids,
            required,
            scratch: Mutex::new(Scratch {
                counts: vec![0; n],
                blocked: vec![false; n],
                dirty: Vec::new(),
            }),
        })
    }

    /// Total posting-list entries (index size metric for the build table).
    pub fn posting_entries(&self) -> usize {
        self.postings.iter().map(Vec::len).sum::<usize>()
            + self.blockings.iter().map(Vec::len).sum::<usize>()
    }
}

impl Matcher for CountingMatcher {
    fn match_event(&self, ev: &Event) -> Vec<SubId> {
        let ebits = self.space.encode_event(ev);
        let mut scratch = self.scratch.lock().expect("counting scratch poisoned");
        let Scratch {
            counts,
            blocked,
            dirty,
        } = &mut *scratch;
        for bit in ebits.ones() {
            for &pos in &self.postings[bit] {
                let c = &mut counts[pos as usize];
                if *c == 0 && !blocked[pos as usize] {
                    dirty.push(pos);
                }
                *c += 1;
            }
            for &pos in &self.blockings[bit] {
                if counts[pos as usize] == 0 && !blocked[pos as usize] {
                    dirty.push(pos);
                }
                blocked[pos as usize] = true;
            }
        }
        let mut out = Vec::new();
        for &pos in dirty.iter() {
            let pos = pos as usize;
            if !blocked[pos] && counts[pos] == self.required[pos] {
                out.push(self.ids[pos]);
            }
            counts[pos] = 0;
            blocked[pos] = false;
        }
        dirty.clear();
        drop(scratch);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn name(&self) -> &'static str {
        "COUNTING"
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialScan;
    use apcm_bexpr::parser;
    use apcm_workload::{OperatorMix, WorkloadSpec};

    #[test]
    fn agrees_with_scan_on_random_workloads() {
        for seed in 0..3u64 {
            let wl = WorkloadSpec::new(400)
                .seed(seed)
                .planted_fraction(0.3)
                .build();
            let scan = SequentialScan::new(&wl.subs);
            let counting = CountingMatcher::build(&wl.schema, &wl.subs).unwrap();
            for ev in wl.events(40) {
                assert_eq!(
                    counting.match_event(&ev),
                    scan.match_event(&ev),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn agrees_on_range_heavy_mix() {
        let wl = WorkloadSpec::new(300)
            .operators(OperatorMix::range_heavy())
            .planted_fraction(0.4)
            .seed(7)
            .build();
        let scan = SequentialScan::new(&wl.subs);
        let counting = CountingMatcher::build(&wl.schema, &wl.subs).unwrap();
        for ev in wl.events(40) {
            assert_eq!(counting.match_event(&ev), scan.match_event(&ev));
        }
    }

    #[test]
    fn negations_handled_via_blocked_lists() {
        let schema = apcm_bexpr::Schema::uniform(2, 100);
        let subs = vec![
            parser::parse_subscription_with_id(&schema, SubId(0), "a0 != 5").unwrap(),
            parser::parse_subscription_with_id(&schema, SubId(1), "a0 != 5 AND a1 NOT IN {1, 2}")
                .unwrap(),
        ];
        let counting = CountingMatcher::build(&schema, &subs).unwrap();
        let ev = parser::parse_event(&schema, "a0 = 6, a1 = 3").unwrap();
        assert_eq!(counting.match_event(&ev), vec![SubId(0), SubId(1)]);
        let ev = parser::parse_event(&schema, "a0 = 5, a1 = 3").unwrap();
        assert!(counting.match_event(&ev).is_empty());
        let ev = parser::parse_event(&schema, "a0 = 6, a1 = 2").unwrap();
        assert_eq!(counting.match_event(&ev), vec![SubId(0)]);
        // a1 absent: sub 1 requires its presence.
        let ev = parser::parse_event(&schema, "a0 = 6").unwrap();
        assert_eq!(counting.match_event(&ev), vec![SubId(0)]);
    }

    #[test]
    fn counter_reset_is_complete_across_events() {
        // The same event twice must give identical results; a stale counter
        // or blocked flag would corrupt the second pass.
        let wl = WorkloadSpec::new(200).planted_fraction(1.0).seed(3).build();
        let counting = CountingMatcher::build(&wl.schema, &wl.subs).unwrap();
        let ev = &wl.events(1)[0];
        let first = counting.match_event(ev);
        let second = counting.match_event(ev);
        assert_eq!(first, second);
        assert!(!first.is_empty(), "planted event must match");
    }

    #[test]
    fn shared_predicates_counted_once_each() {
        let schema = apcm_bexpr::Schema::uniform(3, 10);
        // Both subs share `a0 = 1`; sub 1 additionally needs `a1 = 2`.
        let subs = vec![
            parser::parse_subscription_with_id(&schema, SubId(0), "a0 = 1").unwrap(),
            parser::parse_subscription_with_id(&schema, SubId(1), "a0 = 1 AND a1 = 2").unwrap(),
        ];
        let counting = CountingMatcher::build(&schema, &subs).unwrap();
        assert_eq!(counting.posting_entries(), 3);
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert_eq!(counting.match_event(&ev), vec![SubId(0)]);
        let ev = parser::parse_event(&schema, "a0 = 1, a1 = 2").unwrap();
        assert_eq!(counting.match_event(&ev), vec![SubId(0), SubId(1)]);
    }

    #[test]
    fn empty_corpus() {
        let schema = apcm_bexpr::Schema::uniform(2, 10);
        let counting = CountingMatcher::build(&schema, &[]).unwrap();
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert!(counting.match_event(&ev).is_empty());
        assert!(counting.is_empty());
    }
}
