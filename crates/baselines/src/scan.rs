//! Naive sequential scan.

use apcm_bexpr::{Event, Matcher, SubId, Subscription};

/// Evaluates every subscription against every event, one after the other.
///
/// `O(corpus size · expression size)` per event — the sequential
/// state-of-nothing baseline whose collapse at large corpora (the abstract's
/// "36 events/s at five million expressions") motivates compressed parallel
/// matching. Also the simplest possible correct engine, so every other
/// matcher is differential-tested against it.
#[derive(Debug)]
pub struct SequentialScan {
    subs: Vec<Subscription>,
}

impl SequentialScan {
    /// Indexes (copies) the corpus.
    pub fn new(subs: &[Subscription]) -> Self {
        Self {
            subs: subs.to_vec(),
        }
    }

    /// The indexed subscriptions.
    pub fn subs(&self) -> &[Subscription] {
        &self.subs
    }
}

impl Matcher for SequentialScan {
    fn match_event(&self, ev: &Event) -> Vec<SubId> {
        let mut out: Vec<SubId> = self
            .subs
            .iter()
            .filter(|s| s.matches(ev))
            .map(|s| s.id())
            .collect();
        // Corpus order need not be id order; normalize.
        out.sort_unstable();
        out.dedup();
        out
    }

    fn name(&self) -> &'static str {
        "SCAN"
    }

    fn len(&self) -> usize {
        self.subs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::{parser, Schema, SubId};

    #[test]
    fn matches_brute_force_semantics() {
        let schema = Schema::uniform(4, 100);
        let subs: Vec<_> = ["a0 = 5", "a0 = 5 AND a1 > 50", "a2 < 10"]
            .iter()
            .enumerate()
            .map(|(i, t)| parser::parse_subscription_with_id(&schema, SubId(i as u32), t).unwrap())
            .collect();
        let scan = SequentialScan::new(&subs);
        assert_eq!(scan.len(), 3);

        let ev = parser::parse_event(&schema, "a0 = 5, a1 = 60, a2 = 3").unwrap();
        assert_eq!(scan.match_event(&ev), vec![SubId(0), SubId(1), SubId(2)]);
        let ev = parser::parse_event(&schema, "a0 = 5, a1 = 10").unwrap();
        assert_eq!(scan.match_event(&ev), vec![SubId(0)]);
        let ev = parser::parse_event(&schema, "a3 = 1").unwrap();
        assert!(scan.match_event(&ev).is_empty());
    }

    #[test]
    fn results_sorted_even_with_shuffled_ids() {
        let schema = Schema::uniform(2, 10);
        let subs: Vec<_> = [9u32, 3, 7]
            .iter()
            .map(|&id| parser::parse_subscription_with_id(&schema, SubId(id), "a0 >= 0").unwrap())
            .collect();
        let scan = SequentialScan::new(&subs);
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert_eq!(scan.match_event(&ev), vec![SubId(3), SubId(7), SubId(9)]);
    }

    #[test]
    fn empty_corpus() {
        let scan = SequentialScan::new(&[]);
        assert!(scan.is_empty());
        let schema = Schema::uniform(1, 10);
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert!(scan.match_event(&ev).is_empty());
    }
}
