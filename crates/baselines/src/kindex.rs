//! The k-index of Whang et al. (VLDB 2009).

use apcm_bexpr::{AttrId, Event, Matcher, Schema, SubId, Subscription, Value};
use std::collections::HashMap;

/// Size-partitioned posting-list index.
///
/// Subscriptions are partitioned by predicate count `k`; within a partition,
/// posting lists are keyed by `(attribute, value)`. An event satisfies a
/// size-`k` subscription iff the subscription appears on exactly `k` of the
/// event's posting lists, and a partition with `k` greater than the event
/// size is skipped without touching any list — the index's signature
/// optimization.
///
/// The original k-index targets equality/`IN` workloads. Here each predicate
/// is *expanded* into the explicit values it accepts when that set is small
/// (≤ `max_expand` values, e.g. `=`, `IN`, narrow `BETWEEN`); subscriptions
/// containing a wider predicate (broad ranges, negations) fall back to a
/// brute-force residual list. This keeps the comparison honest: the k-index
/// shines exactly where the literature says it does and degrades to a scan
/// where its key scheme cannot express the predicate.
#[derive(Debug)]
pub struct KIndex {
    partitions: Vec<Partition>,
    residual: Vec<Subscription>,
    total: usize,
}

#[derive(Debug)]
struct Partition {
    k: usize,
    postings: HashMap<(AttrId, Value), Vec<SubId>>,
}

impl KIndex {
    /// Builds with the default expansion bound (64 values per predicate).
    pub fn build(schema: &Schema, subs: &[Subscription]) -> Self {
        Self::with_max_expand(schema, subs, 64)
    }

    /// Builds with an explicit expansion bound.
    pub fn with_max_expand(schema: &Schema, subs: &[Subscription], max_expand: u64) -> Self {
        let mut by_k: HashMap<usize, Partition> = HashMap::new();
        let mut residual = Vec::new();
        'subs: for sub in subs {
            // Pre-check every predicate's expansion before touching lists so
            // a half-indexed subscription never leaks into the partitions.
            let mut expansions: Vec<Vec<(AttrId, Value)>> = Vec::with_capacity(sub.len());
            for pred in sub.predicates() {
                let domain = schema.domain(pred.attr);
                let intervals = pred.op.satisfying_intervals(domain);
                let width: u64 = intervals.iter().map(|(lo, hi)| (hi - lo) as u64 + 1).sum();
                if width == 0 || width > max_expand {
                    residual.push(sub.clone());
                    continue 'subs;
                }
                let mut keys = Vec::with_capacity(width as usize);
                for (lo, hi) in intervals {
                    for v in lo..=hi {
                        keys.push((pred.attr, v));
                    }
                }
                expansions.push(keys);
            }
            let k = sub.len();
            let partition = by_k.entry(k).or_insert_with(|| Partition {
                k,
                postings: HashMap::new(),
            });
            for keys in expansions {
                for key in keys {
                    partition.postings.entry(key).or_default().push(sub.id());
                }
            }
        }
        let mut partitions: Vec<Partition> = by_k.into_values().collect();
        partitions.sort_by_key(|p| p.k);
        for p in &mut partitions {
            for list in p.postings.values_mut() {
                list.sort_unstable();
            }
        }
        Self {
            partitions,
            residual,
            total: subs.len(),
        }
    }

    /// Subscriptions that could not be key-expanded and are scanned per
    /// event.
    pub fn residual_len(&self) -> usize {
        self.residual.len()
    }

    /// Total posting entries across partitions (index size metric).
    pub fn posting_entries(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.postings.values().map(Vec::len).sum::<usize>())
            .sum()
    }
}

impl Matcher for KIndex {
    fn match_event(&self, ev: &Event) -> Vec<SubId> {
        let mut out = Vec::new();
        let mut hits: Vec<SubId> = Vec::new();
        for partition in &self.partitions {
            // A size-k conjunction cannot match an event with < k attributes.
            if partition.k > ev.len() {
                break;
            }
            hits.clear();
            for &(attr, v) in ev.pairs() {
                if let Some(list) = partition.postings.get(&(attr, v)) {
                    hits.extend_from_slice(list);
                }
            }
            // Each satisfied predicate contributes exactly one hit, so a
            // subscription matches iff its id occurs k times.
            hits.sort_unstable();
            let mut i = 0;
            while i < hits.len() {
                let mut j = i + 1;
                while j < hits.len() && hits[j] == hits[i] {
                    j += 1;
                }
                if j - i == partition.k {
                    out.push(hits[i]);
                }
                i = j;
            }
        }
        out.extend(
            self.residual
                .iter()
                .filter(|s| s.matches(ev))
                .map(|s| s.id()),
        );
        out.sort_unstable();
        out.dedup();
        out
    }

    fn name(&self) -> &'static str {
        "K-INDEX"
    }

    fn len(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialScan;
    use apcm_bexpr::parser;
    use apcm_workload::{OperatorMix, WorkloadSpec};

    #[test]
    fn equality_workload_fully_indexed() {
        let wl = WorkloadSpec::new(300)
            .operators(OperatorMix::equality_only())
            .planted_fraction(0.3)
            .seed(21)
            .build();
        let kindex = KIndex::build(&wl.schema, &wl.subs);
        assert_eq!(kindex.residual_len(), 0, "equality never falls back");
        let scan = SequentialScan::new(&wl.subs);
        for ev in wl.events(50) {
            assert_eq!(kindex.match_event(&ev), scan.match_event(&ev));
        }
    }

    #[test]
    fn mixed_workload_agrees_via_residual() {
        let wl = WorkloadSpec::new(300)
            .operators(OperatorMix::balanced())
            .planted_fraction(0.3)
            .seed(22)
            .build();
        let kindex = KIndex::build(&wl.schema, &wl.subs);
        assert!(kindex.residual_len() > 0, "negations should fall back");
        let scan = SequentialScan::new(&wl.subs);
        for ev in wl.events(50) {
            assert_eq!(kindex.match_event(&ev), scan.match_event(&ev));
        }
    }

    #[test]
    fn partition_skip_respects_event_size() {
        let schema = apcm_bexpr::Schema::uniform(5, 10);
        let subs = vec![
            parser::parse_subscription_with_id(&schema, SubId(0), "a0 = 1").unwrap(),
            parser::parse_subscription_with_id(&schema, SubId(1), "a0 = 1 AND a1 = 2 AND a2 = 3")
                .unwrap(),
        ];
        let kindex = KIndex::build(&schema, &subs);
        // One-attribute event can only reach the k=1 partition.
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert_eq!(kindex.match_event(&ev), vec![SubId(0)]);
        let ev = parser::parse_event(&schema, "a0 = 1, a1 = 2, a2 = 3").unwrap();
        assert_eq!(kindex.match_event(&ev), vec![SubId(0), SubId(1)]);
    }

    #[test]
    fn narrow_between_expands_wide_between_falls_back() {
        let schema = apcm_bexpr::Schema::uniform(2, 1000);
        let subs = vec![
            parser::parse_subscription_with_id(&schema, SubId(0), "a0 BETWEEN 10 AND 20").unwrap(),
            parser::parse_subscription_with_id(&schema, SubId(1), "a0 BETWEEN 0 AND 900").unwrap(),
        ];
        let kindex = KIndex::with_max_expand(&schema, &subs, 32);
        assert_eq!(kindex.residual_len(), 1);
        assert_eq!(kindex.posting_entries(), 11);
        let ev = parser::parse_event(&schema, "a0 = 15").unwrap();
        assert_eq!(kindex.match_event(&ev), vec![SubId(0), SubId(1)]);
        let ev = parser::parse_event(&schema, "a0 = 500").unwrap();
        assert_eq!(kindex.match_event(&ev), vec![SubId(1)]);
    }

    #[test]
    fn in_set_expansion() {
        let schema = apcm_bexpr::Schema::uniform(2, 100);
        let subs = vec![parser::parse_subscription_with_id(
            &schema,
            SubId(4),
            "a0 IN {3, 40, 77} AND a1 = 9",
        )
        .unwrap()];
        let kindex = KIndex::build(&schema, &subs);
        for v in [3, 40, 77] {
            let ev = parser::parse_event(&schema, &format!("a0 = {v}, a1 = 9")).unwrap();
            assert_eq!(kindex.match_event(&ev), vec![SubId(4)]);
        }
        let ev = parser::parse_event(&schema, "a0 = 4, a1 = 9").unwrap();
        assert!(kindex.match_event(&ev).is_empty());
    }

    #[test]
    fn empty_corpus() {
        let schema = apcm_bexpr::Schema::uniform(1, 10);
        let kindex = KIndex::build(&schema, &[]);
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert!(kindex.match_event(&ev).is_empty());
        assert_eq!(kindex.len(), 0);
    }
}
