//! Disjunctive expressions: OR-of-conjunctions (DNF).
//!
//! The conjunction-only core model follows the ICDE paper; the BE-Tree
//! journal version (TODS 2013) extends matching to full Boolean expressions
//! by normalizing to DNF and indexing each conjunction separately. This
//! module provides that layer: a [`DnfSubscription`] is a non-empty OR of
//! non-empty conjunctions, and `apcm-core`'s `DnfEngine` registers each
//! clause as an internal conjunction and maps matches back.

use crate::{BexprError, Event, Predicate, Schema, SubId, Subscription};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Boolean expression in disjunctive normal form: it matches an event iff
/// **any** clause (conjunction of predicates) matches.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DnfSubscription {
    id: SubId,
    clauses: Box<[Box<[Predicate]>]>,
}

impl DnfSubscription {
    /// Builds a DNF subscription; every clause is canonicalized the same way
    /// [`Subscription::new`] canonicalizes its predicates, and duplicate
    /// clauses are removed.
    ///
    /// Fails if there are no clauses or any clause is empty.
    pub fn new(id: SubId, clauses: Vec<Vec<Predicate>>) -> Result<Self, BexprError> {
        if clauses.is_empty() {
            return Err(BexprError::EmptySubscription);
        }
        let mut canonical: Vec<Box<[Predicate]>> = Vec::with_capacity(clauses.len());
        for clause in clauses {
            // Reuse the conjunction canonicalization (sort + dedup + the
            // non-empty check).
            let conj = Subscription::new(id, clause)?;
            canonical.push(conj.predicates().to_vec().into_boxed_slice());
        }
        canonical.sort();
        canonical.dedup();
        Ok(Self {
            id,
            clauses: canonical.into_boxed_slice(),
        })
    }

    /// Wraps a plain conjunction as a single-clause DNF.
    pub fn from_conjunction(sub: &Subscription) -> Self {
        Self {
            id: sub.id(),
            clauses: vec![sub.predicates().to_vec().into_boxed_slice()].into_boxed_slice(),
        }
    }

    /// The subscription's identifier.
    #[inline]
    pub fn id(&self) -> SubId {
        self.id
    }

    /// The clauses, each a sorted predicate conjunction.
    pub fn clauses(&self) -> impl Iterator<Item = &[Predicate]> {
        self.clauses.iter().map(|c| c.as_ref())
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Always `false` by construction.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Reference semantics: any clause fully satisfied.
    pub fn matches(&self, ev: &Event) -> bool {
        self.clauses
            .iter()
            .any(|clause| clause.iter().all(|p| p.matches(ev.value(p.attr))))
    }

    /// Validates every predicate of every clause against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), BexprError> {
        self.clauses
            .iter()
            .flat_map(|c| c.iter())
            .try_for_each(|p| p.validate(schema))
    }

    /// Materializes each clause as a [`Subscription`] carrying the given id;
    /// the engine layer assigns internal ids per clause.
    pub fn clause_subscriptions(&self, ids: impl Iterator<Item = SubId>) -> Vec<Subscription> {
        self.clauses
            .iter()
            .zip(ids)
            .map(|(clause, id)| {
                Subscription::new(id, clause.to_vec()).expect("clauses are non-empty")
            })
            .collect()
    }

    /// Renders as `(c1) OR (c2) OR …`; parses back via
    /// [`crate::parser::parse_dnf`].
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DnfDisplay<'a> {
        DnfDisplay { sub: self, schema }
    }
}

/// `Display` adaptor produced by [`DnfSubscription::display`].
pub struct DnfDisplay<'a> {
    sub: &'a DnfSubscription,
    schema: &'a Schema,
}

impl fmt::Display for DnfDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, clause) in self.sub.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " OR ")?;
            }
            write!(f, "(")?;
            for (j, p) in clause.iter().enumerate() {
                if j > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{}", p.display(self.schema))?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrId, Op};

    fn ev(pairs: &[(u32, i64)]) -> Event {
        Event::new(pairs.iter().map(|&(a, v)| (AttrId(a), v)).collect()).unwrap()
    }

    fn pred(attr: u32, op: Op) -> Predicate {
        Predicate::new(AttrId(attr), op)
    }

    #[test]
    fn any_clause_matches() {
        let dnf = DnfSubscription::new(
            SubId(1),
            vec![
                vec![pred(0, Op::Eq(1)), pred(1, Op::Eq(2))],
                vec![pred(0, Op::Eq(9))],
            ],
        )
        .unwrap();
        assert!(dnf.matches(&ev(&[(0, 1), (1, 2)])), "first clause");
        assert!(dnf.matches(&ev(&[(0, 9)])), "second clause");
        assert!(!dnf.matches(&ev(&[(0, 1)])), "first clause incomplete");
        assert!(!dnf.matches(&ev(&[(1, 2)])));
        assert_eq!(dnf.len(), 2);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert_eq!(
            DnfSubscription::new(SubId(0), vec![]),
            Err(BexprError::EmptySubscription)
        );
        assert_eq!(
            DnfSubscription::new(SubId(0), vec![vec![]]),
            Err(BexprError::EmptySubscription)
        );
    }

    #[test]
    fn duplicate_clauses_removed() {
        let a = vec![pred(0, Op::Eq(1)), pred(1, Op::Eq(2))];
        let b = vec![pred(1, Op::Eq(2)), pred(0, Op::Eq(1))]; // same, reordered
        let dnf = DnfSubscription::new(SubId(0), vec![a, b]).unwrap();
        assert_eq!(dnf.len(), 1);
    }

    #[test]
    fn from_conjunction_is_single_clause() {
        let sub = Subscription::new(SubId(7), vec![pred(0, Op::Lt(5))]).unwrap();
        let dnf = DnfSubscription::from_conjunction(&sub);
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf.id(), SubId(7));
        assert!(dnf.matches(&ev(&[(0, 3)])));
        assert!(!dnf.matches(&ev(&[(0, 5)])));
    }

    #[test]
    fn clause_subscriptions_assign_ids() {
        let dnf = DnfSubscription::new(
            SubId(0),
            vec![vec![pred(0, Op::Eq(1))], vec![pred(0, Op::Eq(2))]],
        )
        .unwrap();
        let subs = dnf.clause_subscriptions([SubId(100), SubId(101)].into_iter());
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].id(), SubId(100));
        assert_eq!(subs[1].id(), SubId(101));
    }

    #[test]
    fn display_round_trips() {
        let schema = crate::Schema::uniform(3, 100);
        let dnf = DnfSubscription::new(
            SubId(4),
            vec![
                vec![pred(0, Op::Between(1, 5)), pred(2, Op::Ne(7))],
                vec![pred(1, Op::in_set(vec![3, 9]).unwrap())],
            ],
        )
        .unwrap();
        let text = dnf.display(&schema).to_string();
        let reparsed = crate::parser::parse_dnf_with_id(&schema, SubId(4), &text).unwrap();
        assert_eq!(reparsed, dnf);
    }

    #[test]
    fn validate_checks_all_clauses() {
        let schema = crate::Schema::uniform(2, 10);
        let bad = DnfSubscription::new(
            SubId(0),
            vec![vec![pred(0, Op::Eq(1))], vec![pred(5, Op::Eq(1))]],
        )
        .unwrap();
        assert!(bad.validate(&schema).is_err());
    }
}
