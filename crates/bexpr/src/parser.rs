//! Text format for subscriptions and events.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! dnf          := clause ( "OR" clause )*
//! clause       := "(" subscription ")" | subscription
//! subscription := predicate ( "AND" predicate )*
//! predicate    := attr ( "=" | "!=" | "<" | "<=" | ">" | ">=" ) int
//!               | attr "BETWEEN" int "AND" int
//!               | attr ["NOT"] "IN" "{" int ( "," int )* "}"
//! event        := attr "=" int ( "," attr "=" int )*
//! attr         := identifier registered in the schema
//! int          := [ "-" ] digits
//! ```
//!
//! The `Display` impls on [`crate::Subscription`] / [`crate::Event`] emit
//! exactly this format, so workload traces round-trip.

use crate::{BexprError, Event, Op, Predicate, Schema, SubId, Subscription, Value};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(Value),
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LBrace,
    RBrace,
    Comma,
    LParen,
    RParen,
    And,
    Or,
    Between,
    In,
    Not,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> BexprError {
        BexprError::Parse {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Returns the next token and the byte offset where it starts.
    fn next(&mut self) -> Result<Option<(Tok, usize)>, BexprError> {
        self.skip_ws();
        if self.pos >= self.bytes.len() {
            return Ok(None);
        }
        let start = self.pos;
        let b = self.bytes[self.pos];
        let tok = match b {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b'=' => {
                self.pos += 1;
                Tok::Eq
            }
            b'!' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Tok::Ne
                } else {
                    return Err(self.err("expected `=` after `!`"));
                }
            }
            b'<' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'-' | b'0'..=b'9' => {
                self.pos += 1;
                while self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text = &self.src[start..self.pos];
                let v: Value = text
                    .parse()
                    .map_err(|_| self.err(format!("invalid integer `{text}`")))?;
                Tok::Int(v)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                self.pos += 1;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    self.pos += 1;
                }
                let word = &self.src[start..self.pos];
                match word.to_ascii_uppercase().as_str() {
                    "AND" => Tok::And,
                    "OR" => Tok::Or,
                    "BETWEEN" => Tok::Between,
                    "IN" => Tok::In,
                    "NOT" => Tok::Not,
                    _ => Tok::Ident(word.to_string()),
                }
            }
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char)));
            }
        };
        Ok(Some((tok, start)))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    peeked: Option<Option<(Tok, usize)>>,
    schema: &'a Schema,
}

impl<'a> Parser<'a> {
    fn new(schema: &'a Schema, src: &'a str) -> Self {
        Self {
            lexer: Lexer::new(src),
            peeked: None,
            schema,
        }
    }

    fn advance(&mut self) -> Result<Option<(Tok, usize)>, BexprError> {
        match self.peeked.take() {
            Some(t) => Ok(t),
            None => self.lexer.next(),
        }
    }

    fn peek(&mut self) -> Result<Option<&Tok>, BexprError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next()?);
        }
        Ok(self
            .peeked
            .as_ref()
            .and_then(|opt| opt.as_ref())
            .map(|(tok, _)| tok))
    }

    fn err_at(&self, offset: usize, message: impl Into<String>) -> BexprError {
        BexprError::Parse {
            message: message.into(),
            offset,
        }
    }

    fn expect_int(&mut self) -> Result<Value, BexprError> {
        match self.advance()? {
            Some((Tok::Int(v), _)) => Ok(v),
            Some((tok, off)) => Err(self.err_at(off, format!("expected integer, found {tok:?}"))),
            None => Err(self.err_at(self.lexer.pos, "expected integer, found end of input")),
        }
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), BexprError> {
        match self.advance()? {
            Some((tok, _)) if tok == want => Ok(()),
            Some((tok, off)) => Err(self.err_at(off, format!("expected {what}, found {tok:?}"))),
            None => Err(self.err_at(
                self.lexer.pos,
                format!("expected {what}, found end of input"),
            )),
        }
    }

    fn expect_attr(&mut self) -> Result<crate::AttrId, BexprError> {
        match self.advance()? {
            Some((Tok::Ident(name), off)) => self
                .schema
                .attr_id(&name)
                .ok_or_else(|| self.err_at(off, format!("unknown attribute `{name}`"))),
            Some((tok, off)) => Err(self.err_at(off, format!("expected attribute, found {tok:?}"))),
            None => Err(self.err_at(self.lexer.pos, "expected attribute, found end of input")),
        }
    }

    fn parse_set(&mut self) -> Result<Vec<Value>, BexprError> {
        self.expect(Tok::LBrace, "`{`")?;
        let mut values = vec![self.expect_int()?];
        loop {
            match self.advance()? {
                Some((Tok::Comma, _)) => values.push(self.expect_int()?),
                Some((Tok::RBrace, _)) => return Ok(values),
                Some((tok, off)) => {
                    return Err(self.err_at(off, format!("expected `,` or `}}`, found {tok:?}")))
                }
                None => {
                    return Err(self.err_at(self.lexer.pos, "unterminated set: expected `}`"));
                }
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<Predicate, BexprError> {
        let attr = self.expect_attr()?;
        let op = match self.advance()? {
            Some((Tok::Eq, _)) => Op::Eq(self.expect_int()?),
            Some((Tok::Ne, _)) => Op::Ne(self.expect_int()?),
            Some((Tok::Lt, _)) => Op::Lt(self.expect_int()?),
            Some((Tok::Le, _)) => Op::Le(self.expect_int()?),
            Some((Tok::Gt, _)) => Op::Gt(self.expect_int()?),
            Some((Tok::Ge, _)) => Op::Ge(self.expect_int()?),
            Some((Tok::Between, _)) => {
                let lo = self.expect_int()?;
                self.expect(Tok::And, "`AND`")?;
                let hi = self.expect_int()?;
                Op::between(lo, hi)?
            }
            Some((Tok::In, _)) => Op::in_set(self.parse_set()?)?,
            Some((Tok::Not, _)) => {
                self.expect(Tok::In, "`IN` after `NOT`")?;
                Op::not_in_set(self.parse_set()?)?
            }
            Some((tok, off)) => {
                return Err(self.err_at(off, format!("expected operator, found {tok:?}")))
            }
            None => {
                return Err(self.err_at(self.lexer.pos, "expected operator, found end of input"))
            }
        };
        Ok(Predicate::new(attr, op))
    }
}

impl Parser<'_> {
    /// One DNF clause: a parenthesized or bare conjunction.
    fn parse_clause(&mut self) -> Result<Vec<Predicate>, BexprError> {
        let parenthesized = matches!(self.peek()?, Some(Tok::LParen));
        if parenthesized {
            self.advance()?;
        }
        let mut preds = vec![self.parse_predicate()?];
        while matches!(self.peek()?, Some(Tok::And)) {
            self.advance()?;
            preds.push(self.parse_predicate()?);
        }
        if parenthesized {
            self.expect(Tok::RParen, "`)`")?;
        }
        Ok(preds)
    }
}

/// Parses a DNF expression: clauses joined by `OR`, each a conjunction,
/// optionally parenthesized. A plain conjunction is a one-clause DNF.
pub fn parse_dnf_with_id(
    schema: &Schema,
    id: SubId,
    src: &str,
) -> Result<crate::DnfSubscription, BexprError> {
    let mut p = Parser::new(schema, src);
    let mut clauses = vec![p.parse_clause()?];
    loop {
        match p.advance()? {
            Some((Tok::Or, _)) => clauses.push(p.parse_clause()?),
            Some((tok, off)) => {
                return Err(p.err_at(off, format!("expected `OR` or end of input, found {tok:?}")))
            }
            None => break,
        }
    }
    let dnf = crate::DnfSubscription::new(id, clauses)?;
    dnf.validate(schema)?;
    Ok(dnf)
}

/// Parses a DNF expression with id 0; convenience for tests and examples.
pub fn parse_dnf(schema: &Schema, src: &str) -> Result<crate::DnfSubscription, BexprError> {
    parse_dnf_with_id(schema, SubId(0), src)
}

/// Parses a conjunction of predicates. The caller supplies the id (ids live
/// outside the text format so traces can be re-numbered freely).
pub fn parse_subscription_with_id(
    schema: &Schema,
    id: SubId,
    src: &str,
) -> Result<Subscription, BexprError> {
    let mut p = Parser::new(schema, src);
    let mut preds = vec![p.parse_predicate()?];
    loop {
        match p.advance()? {
            Some((Tok::And, _)) => preds.push(p.parse_predicate()?),
            Some((tok, off)) => {
                return Err(p.err_at(
                    off,
                    format!("expected `AND` or end of input, found {tok:?}"),
                ))
            }
            None => break,
        }
    }
    let sub = Subscription::new(id, preds)?;
    sub.validate(schema)?;
    Ok(sub)
}

/// Parses a subscription with id 0; convenience for tests and examples.
pub fn parse_subscription(schema: &Schema, src: &str) -> Result<Subscription, BexprError> {
    parse_subscription_with_id(schema, SubId(0), src)
}

/// Parses an event: `attr = int , attr = int , …`.
pub fn parse_event(schema: &Schema, src: &str) -> Result<Event, BexprError> {
    let mut p = Parser::new(schema, src);
    let mut pairs = Vec::new();
    loop {
        let attr = p.expect_attr()?;
        p.expect(Tok::Eq, "`=`")?;
        pairs.push((attr, p.expect_int()?));
        match p.advance()? {
            Some((Tok::Comma, _)) => continue,
            Some((tok, off)) => {
                return Err(p.err_at(off, format!("expected `,` or end of input, found {tok:?}")))
            }
            None => break,
        }
    }
    let ev = Event::new(pairs)?;
    for &(attr, v) in ev.pairs() {
        let domain = schema
            .attr(attr)
            .ok_or(BexprError::InvalidAttrId(attr))?
            .domain();
        if !domain.contains(v) {
            return Err(BexprError::ValueOutOfDomain { attr, value: v });
        }
    }
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrId, Domain};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_attr("age", Domain::new(0, 120)).unwrap();
        s.add_attr("city", Domain::new(0, 999)).unwrap();
        s.add_attr("temp", Domain::new(-50, 60)).unwrap();
        s
    }

    #[test]
    fn parses_all_operators() {
        let s = schema();
        let sub = parse_subscription(
            &s,
            "age >= 18 AND age <= 65 AND city != 3 AND city IN {1, 2, 5} \
             AND temp BETWEEN -10 AND 25 AND temp NOT IN {0} AND age < 100 AND age > 1",
        )
        .unwrap();
        assert_eq!(sub.len(), 8);
    }

    #[test]
    fn parses_negative_values() {
        let s = schema();
        let sub = parse_subscription(&s, "temp = -20").unwrap();
        assert_eq!(sub.predicates()[0], Predicate::new(AttrId(2), Op::Eq(-20)));
    }

    #[test]
    fn keywords_case_insensitive() {
        let s = schema();
        assert!(parse_subscription(&s, "age between 1 and 5 and city in {2}").is_ok());
    }

    #[test]
    fn event_parses_and_validates_domain() {
        let s = schema();
        let ev = parse_event(&s, "age = 30, city = 7").unwrap();
        assert_eq!(ev.value(AttrId(0)), Some(30));
        assert!(matches!(
            parse_event(&s, "age = 500"),
            Err(BexprError::ValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn unknown_attribute_is_error_with_offset() {
        let s = schema();
        match parse_subscription(&s, "age = 1 AND bogus = 2") {
            Err(BexprError::Parse { message, offset }) => {
                assert!(message.contains("bogus"));
                assert_eq!(offset, 12);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        let s = schema();
        for bad in [
            "",
            "age",
            "age =",
            "age = 1 AND",
            "age ! 5",
            "age IN {}",
            "age IN {1, }",
            "age IN {1",
            "age BETWEEN 5",
            "age BETWEEN 9 AND 2",
            "age = 1 city = 2",
            "age NOT 5",
            "= 5",
            "age @ 5",
        ] {
            assert!(
                parse_subscription(&s, bad).is_err(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn out_of_domain_subscription_value_rejected() {
        let s = schema();
        assert!(matches!(
            parse_subscription(&s, "age = 300"),
            Err(BexprError::ValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn dnf_parses_and_matches() {
        let s = schema();
        let dnf = parse_dnf(
            &s,
            "(age >= 65) OR (age < 18 AND city = 7) OR city IN {1, 2}",
        )
        .unwrap();
        assert_eq!(dnf.len(), 3);
        let hit1 = parse_event(&s, "age = 70").unwrap();
        let hit2 = parse_event(&s, "age = 10, city = 7").unwrap();
        let hit3 = parse_event(&s, "age = 30, city = 2").unwrap();
        let miss = parse_event(&s, "age = 30, city = 9").unwrap();
        assert!(dnf.matches(&hit1) && dnf.matches(&hit2) && dnf.matches(&hit3));
        assert!(!dnf.matches(&miss));
    }

    #[test]
    fn bare_conjunction_is_single_clause_dnf() {
        let s = schema();
        let dnf = parse_dnf(&s, "age = 5 AND city = 7").unwrap();
        assert_eq!(dnf.len(), 1);
    }

    #[test]
    fn malformed_dnf_rejected() {
        let s = schema();
        for bad in [
            "(age = 5",
            "age = 5)",
            "(age = 5) OR",
            "OR age = 5",
            "(age = 5) (city = 1)",
            "()",
            "(age = 5)) OR (city = 1)",
        ] {
            assert!(parse_dnf(&s, bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn conjunction_parser_rejects_or() {
        let s = schema();
        assert!(parse_subscription(&s, "age = 5 OR city = 1").is_err());
    }

    #[test]
    fn event_round_trip() {
        let s = schema();
        let ev = parse_event(&s, "temp = -5, age = 40").unwrap();
        let text = ev.display(&s).to_string();
        assert_eq!(parse_event(&s, &text).unwrap(), ev);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{Predicate, Subscription};
    use proptest::prelude::*;

    fn arb_pred(dims: u32, card: i64) -> impl Strategy<Value = Predicate> {
        let attr = 0..dims;
        let v = 0..card;
        (
            attr,
            prop_oneof![
                v.clone().prop_map(Op::Eq),
                v.clone().prop_map(Op::Ne),
                (0..card - 1).prop_map(move |lo| Op::Between(lo, (lo + 7).min(card - 1))),
                proptest::collection::vec(v, 1..5).prop_map(|vs| Op::in_set(vs).unwrap()),
            ],
        )
            .prop_map(|(a, op)| Predicate::new(crate::AttrId(a), op))
    }

    proptest! {
        /// Display → parse is the identity on canonical subscriptions.
        #[test]
        fn subscription_round_trip(
            preds in proptest::collection::vec(arb_pred(6, 50), 1..6)
        ) {
            let schema = Schema::uniform(6, 50);
            let sub = Subscription::new(crate::SubId(1), preds).unwrap();
            let text = sub.display(&schema).to_string();
            let reparsed = parse_subscription(&schema, &text).unwrap();
            prop_assert_eq!(reparsed.predicates(), sub.predicates());
        }
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        /// The parser never panics: arbitrary byte soup either parses or
        /// returns a structured error.
        #[test]
        fn parser_total_on_arbitrary_input(input in "\\PC{0,64}") {
            let schema = Schema::uniform(4, 100);
            let _ = parse_subscription(&schema, &input);
            let _ = parse_dnf(&schema, &input);
            let _ = parse_event(&schema, &input);
        }

        /// Near-miss inputs built from valid tokens also never panic.
        #[test]
        fn parser_total_on_token_soup(
            tokens in proptest::collection::vec(
                prop_oneof![
                    Just("a0"), Just("a1"), Just("bogus"), Just("AND"), Just("OR"),
                    Just("BETWEEN"), Just("IN"), Just("NOT"), Just("="), Just("!="),
                    Just("<"), Just("<="), Just(">"), Just(">="), Just("("), Just(")"),
                    Just("{"), Just("}"), Just(","), Just("5"), Just("-3"), Just("99"),
                ],
                0..12,
            )
        ) {
            let schema = Schema::uniform(4, 100);
            let input = tokens.join(" ");
            let _ = parse_subscription(&schema, &input);
            let _ = parse_dnf(&schema, &input);
            let _ = parse_event(&schema, &input);
        }
    }
}
