//! Subscriptions: conjunctions of predicates (Boolean expressions).

use crate::{BexprError, Event, Predicate, Schema, SubId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Boolean expression: the conjunction of one or more [`Predicate`]s,
/// tagged with an application-assigned [`SubId`].
///
/// Predicates are stored sorted by `(attribute, operator)` so two
/// subscriptions with the same predicate multiset compare equal and encode to
/// the same bitmap. Multiple predicates on the same attribute are allowed
/// (e.g. `x > 3 AND x != 7`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subscription {
    id: SubId,
    preds: Box<[Predicate]>,
}

impl Subscription {
    /// Builds a subscription, canonicalizing predicate order.
    ///
    /// Fails if `preds` is empty; per-predicate validity is checked
    /// separately by [`Subscription::validate`] so that ids can be minted
    /// before a schema exists.
    pub fn new(id: SubId, mut preds: Vec<Predicate>) -> Result<Self, BexprError> {
        if preds.is_empty() {
            return Err(BexprError::EmptySubscription);
        }
        preds.sort_unstable();
        preds.dedup();
        Ok(Self {
            id,
            preds: preds.into_boxed_slice(),
        })
    }

    /// The subscription's identifier.
    #[inline]
    pub fn id(&self) -> SubId {
        self.id
    }

    /// The predicates, sorted by `(attribute, operator)`.
    #[inline]
    pub fn predicates(&self) -> &[Predicate] {
        &self.preds
    }

    /// Number of predicates (the "expression size" axis of the evaluation).
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Always `false` by construction; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Reference semantics: `true` iff every predicate is satisfied by `ev`.
    ///
    /// This brute-force evaluation is the ground truth every indexed matcher
    /// in the workspace is tested against.
    pub fn matches(&self, ev: &Event) -> bool {
        self.preds.iter().all(|p| p.matches(ev.value(p.attr)))
    }

    /// Validates every predicate against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), BexprError> {
        self.preds.iter().try_for_each(|p| p.validate(schema))
    }

    /// Renders the expression as `p1 AND p2 AND …` using attribute names;
    /// parses back via [`crate::parser::parse_subscription`].
    pub fn display<'a>(&'a self, schema: &'a Schema) -> SubscriptionDisplay<'a> {
        SubscriptionDisplay { sub: self, schema }
    }
}

/// `Display` adaptor produced by [`Subscription::display`].
pub struct SubscriptionDisplay<'a> {
    sub: &'a Subscription,
    schema: &'a Schema,
}

impl fmt::Display for SubscriptionDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.sub.preds.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{}", p.display(self.schema))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrId, Op};

    fn ev(pairs: &[(u32, i64)]) -> Event {
        Event::new(pairs.iter().map(|&(a, v)| (AttrId(a), v)).collect()).unwrap()
    }

    #[test]
    fn conjunction_semantics() {
        let sub = Subscription::new(
            SubId(1),
            vec![
                Predicate::new(AttrId(0), Op::Ge(10)),
                Predicate::new(AttrId(1), Op::Eq(5)),
            ],
        )
        .unwrap();
        assert!(sub.matches(&ev(&[(0, 10), (1, 5)])));
        assert!(sub.matches(&ev(&[(0, 99), (1, 5), (2, 1)])));
        assert!(!sub.matches(&ev(&[(0, 9), (1, 5)])), "one predicate fails");
        assert!(!sub.matches(&ev(&[(0, 10)])), "missing attribute fails");
    }

    #[test]
    fn predicates_canonicalized() {
        let a = Predicate::new(AttrId(3), Op::Eq(1));
        let b = Predicate::new(AttrId(1), Op::Lt(9));
        let s1 = Subscription::new(SubId(0), vec![a.clone(), b.clone()]).unwrap();
        let s2 = Subscription::new(SubId(0), vec![b, a.clone(), a]).unwrap();
        assert_eq!(s1, s2, "order and duplicates do not affect identity");
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn multiple_predicates_same_attribute() {
        let sub = Subscription::new(
            SubId(2),
            vec![
                Predicate::new(AttrId(0), Op::Gt(3)),
                Predicate::new(AttrId(0), Op::Ne(7)),
            ],
        )
        .unwrap();
        assert!(sub.matches(&ev(&[(0, 5)])));
        assert!(!sub.matches(&ev(&[(0, 7)])));
        assert!(!sub.matches(&ev(&[(0, 2)])));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Subscription::new(SubId(0), vec![]),
            Err(BexprError::EmptySubscription)
        );
    }

    #[test]
    fn display_round_trips_through_parser() {
        let schema = Schema::uniform(4, 1000);
        let sub = Subscription::new(
            SubId(9),
            vec![
                Predicate::new(AttrId(0), Op::Between(10, 20)),
                Predicate::new(AttrId(2), Op::in_set(vec![4, 2]).unwrap()),
            ],
        )
        .unwrap();
        let text = sub.display(&schema).to_string();
        let reparsed = crate::parser::parse_subscription(&schema, &text).unwrap();
        assert_eq!(reparsed.predicates(), sub.predicates());
    }
}
