//! Boolean-expression data model for publish/subscribe event matching.
//!
//! This crate provides the vocabulary shared by every matching engine in the
//! A-PCM workspace:
//!
//! * [`Schema`] — the attribute dictionary and per-attribute discrete domains,
//! * [`Predicate`] — a single comparison `attribute OP value(s)` with the
//!   operator set used by the BE-Tree family of papers
//!   (`=, ≠, <, ≤, >, ≥, BETWEEN, IN, NOT IN`),
//! * [`Subscription`] — a conjunction of predicates (a Boolean expression),
//! * [`Event`] — an attribute/value assignment to be matched,
//! * [`Matcher`] — the trait every engine (SCAN, counting, k-index, BE-Tree,
//!   PCM, A-PCM) implements, and
//! * a text [`parser`] / `Display` pair so workloads round-trip through a
//!   human-readable format.
//!
//! # Matching semantics
//!
//! A subscription matches an event iff **every** predicate is satisfied. A
//! predicate on an attribute the event does not carry is **unsatisfied**,
//! including negated operators (`≠`, `NOT IN`): absence never satisfies.
//! These are the standard BE-Tree semantics and every engine in the workspace
//! is tested for agreement against the brute-force evaluation defined here.
//!
//! # Example
//!
//! ```
//! use apcm_bexpr::{Schema, Domain, parser, Matcher};
//!
//! let mut schema = Schema::new();
//! for attr in ["age", "city", "cat"] {
//!     schema.add_attr(attr, Domain::new(0, 99)).unwrap();
//! }
//! let sub = parser::parse_subscription(&schema, "age >= 18 AND city = 7").unwrap();
//! let ev = parser::parse_event(&schema, "age = 30, city = 7, cat = 2").unwrap();
//! assert!(sub.matches(&ev));
//! ```

pub mod dnf;
pub mod error;
pub mod event;
pub mod ids;
pub mod matcher;
pub mod parser;
pub mod predicate;
pub mod schema;
pub mod subscription;

pub use dnf::DnfSubscription;
pub use error::BexprError;
pub use event::{Event, EventBuilder};
pub use ids::{AttrId, PredId, SubId};
pub use matcher::Matcher;
pub use predicate::{Op, Predicate};
pub use schema::{Domain, Schema};
pub use subscription::Subscription;

/// Attribute values. Domains are discrete integer ranges, following the
/// BE-Tree model of a high-dimensional discrete space; string-valued
/// attributes are dictionary-encoded into this space by applications (see the
/// `ad_targeting` example in the workspace root).
pub type Value = i64;
