//! Events: attribute/value assignments to be matched.

use crate::{AttrId, BexprError, Schema, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An event — a sparse point in the discrete attribute space.
///
/// Pairs are stored sorted by attribute id with no duplicates, so value
/// lookup is a binary search and iteration order is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    pairs: Box<[(AttrId, Value)]>,
}

impl Event {
    /// Builds an event from attribute/value pairs in any order.
    ///
    /// Fails on duplicate attributes or an empty pair list.
    pub fn new(mut pairs: Vec<(AttrId, Value)>) -> Result<Self, BexprError> {
        if pairs.is_empty() {
            return Err(BexprError::EmptyEvent);
        }
        pairs.sort_unstable_by_key(|&(a, _)| a);
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(BexprError::DuplicateEventAttr(w[0].0));
            }
        }
        Ok(Self {
            pairs: pairs.into_boxed_slice(),
        })
    }

    /// The value assigned to `attr`, if present.
    #[inline]
    pub fn value(&self, attr: AttrId) -> Option<Value> {
        self.pairs
            .binary_search_by_key(&attr, |&(a, _)| a)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// Whether the event carries `attr`.
    #[inline]
    pub fn has_attr(&self, attr: AttrId) -> bool {
        self.pairs.binary_search_by_key(&attr, |&(a, _)| a).is_ok()
    }

    /// Number of attributes carried (the "event size" axis of the paper's
    /// evaluation).
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` is impossible by construction, provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Pairs in ascending attribute order.
    #[inline]
    pub fn pairs(&self) -> &[(AttrId, Value)] {
        &self.pairs
    }

    /// Renders the event with attribute names; parses back via
    /// [`crate::parser::parse_event`].
    pub fn display<'a>(&'a self, schema: &'a Schema) -> EventDisplay<'a> {
        EventDisplay { ev: self, schema }
    }
}

/// Incremental [`Event`] constructor.
#[derive(Debug, Default)]
pub struct EventBuilder {
    pairs: Vec<(AttrId, Value)>,
}

impl EventBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an assignment; the last write to an attribute wins at `build`
    /// time only if no duplicate exists — duplicates are rejected to surface
    /// workload-generation bugs early.
    pub fn set(mut self, attr: AttrId, value: Value) -> Self {
        self.pairs.push((attr, value));
        self
    }

    /// Finalizes the event.
    pub fn build(self) -> Result<Event, BexprError> {
        Event::new(self.pairs)
    }
}

/// `Display` adaptor produced by [`Event::display`].
pub struct EventDisplay<'a> {
    ev: &'a Event,
    schema: &'a Schema,
}

impl fmt::Display for EventDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &(attr, v)) in self.ev.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let name = self
                .schema
                .attr(attr)
                .map(|a| a.name())
                .unwrap_or("<invalid>");
            write!(f, "{name} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_sorted_and_lookup_works() {
        let ev = Event::new(vec![(AttrId(5), 50), (AttrId(1), 10), (AttrId(3), 30)]).unwrap();
        assert_eq!(
            ev.pairs(),
            &[(AttrId(1), 10), (AttrId(3), 30), (AttrId(5), 50)]
        );
        assert_eq!(ev.value(AttrId(3)), Some(30));
        assert_eq!(ev.value(AttrId(2)), None);
        assert!(ev.has_attr(AttrId(5)));
        assert!(!ev.has_attr(AttrId(0)));
        assert_eq!(ev.len(), 3);
        assert!(!ev.is_empty());
    }

    #[test]
    fn duplicates_rejected() {
        assert_eq!(
            Event::new(vec![(AttrId(1), 1), (AttrId(1), 2)]),
            Err(BexprError::DuplicateEventAttr(AttrId(1)))
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Event::new(vec![]), Err(BexprError::EmptyEvent));
    }

    #[test]
    fn builder_round_trip() {
        let ev = EventBuilder::new()
            .set(AttrId(2), 7)
            .set(AttrId(0), 3)
            .build()
            .unwrap();
        assert_eq!(ev.value(AttrId(0)), Some(3));
        assert_eq!(ev.value(AttrId(2)), Some(7));
    }

    #[test]
    fn display_uses_names() {
        let schema = crate::Schema::uniform(3, 100);
        let ev = Event::new(vec![(AttrId(0), 5), (AttrId(2), 9)]).unwrap();
        assert_eq!(ev.display(&schema).to_string(), "a0 = 5, a2 = 9");
    }
}
