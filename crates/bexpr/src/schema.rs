//! Attribute dictionary and discrete domains.

use crate::{AttrId, BexprError, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An inclusive discrete value range `[min, max]` — the domain of one
/// attribute (one dimension of the BE-Tree discrete space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Domain {
    min: Value,
    max: Value,
}

impl Domain {
    /// Creates the inclusive domain `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max`; use [`Domain::try_new`] for fallible creation.
    pub fn new(min: Value, max: Value) -> Self {
        Self::try_new(min, max).expect("empty domain")
    }

    /// Fallible counterpart of [`Domain::new`].
    pub fn try_new(min: Value, max: Value) -> Result<Self, BexprError> {
        if min > max {
            return Err(BexprError::EmptyDomain { min, max });
        }
        if max.checked_sub(min).is_none() {
            return Err(BexprError::DomainTooWide { min, max });
        }
        Ok(Self { min, max })
    }

    /// Smallest value in the domain.
    #[inline]
    pub fn min(&self) -> Value {
        self.min
    }

    /// Largest value in the domain.
    #[inline]
    pub fn max(&self) -> Value {
        self.max
    }

    /// Number of distinct values (the domain cardinality).
    #[inline]
    pub fn cardinality(&self) -> u64 {
        (self.max - self.min) as u64 + 1
    }

    /// Whether `v` lies inside the domain.
    #[inline]
    pub fn contains(&self, v: Value) -> bool {
        self.min <= v && v <= self.max
    }

    /// Clamps `v` into the domain.
    #[inline]
    pub fn clamp(&self, v: Value) -> Value {
        v.clamp(self.min, self.max)
    }
}

/// One registered attribute: its name and domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttrInfo {
    name: String,
    domain: Domain,
}

impl AttrInfo {
    /// Attribute name as registered.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's value domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }
}

/// The attribute dictionary: maps names to dense [`AttrId`]s and records each
/// attribute's [`Domain`].
///
/// Schemas are append-only; ids are assigned in registration order, so every
/// structure keyed by `AttrId` can use a plain vector.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<AttrInfo>,
    #[serde(skip)]
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a uniform schema with `dims` attributes named `a0..a{dims-1}`,
    /// each with domain `[0, cardinality - 1]`. This is the shape used by the
    /// BE-Gen-style workload generator.
    pub fn uniform(dims: usize, cardinality: u64) -> Self {
        assert!(cardinality > 0, "cardinality must be positive");
        let mut schema = Self::new();
        for i in 0..dims {
            schema
                .add_attr(&format!("a{i}"), Domain::new(0, cardinality as Value - 1))
                .expect("generated names are unique");
        }
        schema
    }

    /// Registers a new attribute; returns its id.
    pub fn add_attr(&mut self, name: &str, domain: Domain) -> Result<AttrId, BexprError> {
        if self.by_name.contains_key(name) {
            return Err(BexprError::DuplicateAttr(name.to_string()));
        }
        let id = AttrId::from_index(self.attrs.len());
        self.attrs.push(AttrInfo {
            name: name.to_string(),
            domain,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks an attribute up by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Returns the info record for `id`, or `None` if out of range.
    pub fn attr(&self, id: AttrId) -> Option<&AttrInfo> {
        self.attrs.get(id.index())
    }

    /// Returns the domain of `id`.
    ///
    /// # Panics
    /// Panics if `id` is not registered. Use [`Schema::attr`] when the id may
    /// come from untrusted input.
    #[inline]
    pub fn domain(&self, id: AttrId) -> Domain {
        self.attrs[id.index()].domain
    }

    /// Number of registered attributes (the dimensionality).
    #[inline]
    pub fn dims(&self) -> usize {
        self.attrs.len()
    }

    /// Iterates over `(id, info)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttrInfo)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, info)| (AttrId::from_index(i), info))
    }

    /// Rebuilds the name index after deserialization (the map is skipped by
    /// serde to avoid storing every name twice).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .attrs
            .iter()
            .enumerate()
            .map(|(i, info)| (info.name.clone(), AttrId::from_index(i)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_basics() {
        let d = Domain::new(10, 19);
        assert_eq!(d.cardinality(), 10);
        assert!(d.contains(10) && d.contains(19));
        assert!(!d.contains(9) && !d.contains(20));
        assert_eq!(d.clamp(-5), 10);
        assert_eq!(d.clamp(100), 19);
        assert_eq!(d.clamp(15), 15);
    }

    #[test]
    fn domain_singleton() {
        let d = Domain::new(7, 7);
        assert_eq!(d.cardinality(), 1);
        assert!(d.contains(7));
    }

    #[test]
    fn empty_domain_rejected() {
        assert_eq!(
            Domain::try_new(5, 4),
            Err(BexprError::EmptyDomain { min: 5, max: 4 })
        );
    }

    #[test]
    fn overflowing_domain_rejected() {
        assert!(matches!(
            Domain::try_new(i64::MIN, i64::MAX),
            Err(BexprError::DomainTooWide { .. })
        ));
        // A huge but representable domain is fine.
        assert!(Domain::try_new(i64::MIN / 2 + 1, i64::MAX / 2).is_ok());
    }

    #[test]
    fn schema_registration_and_lookup() {
        let mut s = Schema::new();
        let a = s.add_attr("age", Domain::new(0, 120)).unwrap();
        let b = s.add_attr("city", Domain::new(0, 999)).unwrap();
        assert_eq!(s.dims(), 2);
        assert_eq!(s.attr_id("age"), Some(a));
        assert_eq!(s.attr_id("city"), Some(b));
        assert_eq!(s.attr_id("nope"), None);
        assert_eq!(s.attr(a).unwrap().name(), "age");
        assert_eq!(s.domain(b).max(), 999);
    }

    #[test]
    fn duplicate_attr_rejected() {
        let mut s = Schema::new();
        s.add_attr("x", Domain::new(0, 1)).unwrap();
        assert!(matches!(
            s.add_attr("x", Domain::new(0, 5)),
            Err(BexprError::DuplicateAttr(_))
        ));
    }

    #[test]
    fn uniform_schema_shape() {
        let s = Schema::uniform(4, 100);
        assert_eq!(s.dims(), 4);
        for (id, info) in s.iter() {
            assert_eq!(info.name(), format!("a{}", id.index()));
            assert_eq!(info.domain().cardinality(), 100);
        }
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut s = Schema::uniform(3, 10);
        s.by_name.clear();
        assert_eq!(s.attr_id("a1"), None);
        s.rebuild_index();
        assert_eq!(s.attr_id("a1"), Some(AttrId(1)));
    }
}
