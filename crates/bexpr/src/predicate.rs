//! Predicates: a single comparison over one attribute.

use crate::{AttrId, BexprError, Domain, Schema, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator plus operand(s). This is the operator set supported by
/// the BE-Tree family (relational operators, `BETWEEN`, and set membership).
///
/// `In` / `NotIn` operands are kept sorted and deduplicated so that predicates
/// have a canonical form — equality of two `Op`s implies identical semantics,
/// which the encoding layer relies on to deduplicate the predicate space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Op {
    /// `= v`
    Eq(Value),
    /// `!= v`
    Ne(Value),
    /// `< v`
    Lt(Value),
    /// `<= v`
    Le(Value),
    /// `> v`
    Gt(Value),
    /// `>= v`
    Ge(Value),
    /// `BETWEEN lo AND hi` (inclusive on both ends)
    Between(Value, Value),
    /// `IN {v1, …, vk}` — sorted, deduplicated, non-empty
    In(Box<[Value]>),
    /// `NOT IN {v1, …, vk}` — sorted, deduplicated, non-empty
    NotIn(Box<[Value]>),
}

impl Op {
    /// Builds a canonical `IN` operator from an arbitrary value list.
    pub fn in_set(values: impl Into<Vec<Value>>) -> Result<Self, BexprError> {
        Ok(Op::In(canonical_set(values.into())?))
    }

    /// Builds a canonical `NOT IN` operator from an arbitrary value list.
    pub fn not_in_set(values: impl Into<Vec<Value>>) -> Result<Self, BexprError> {
        Ok(Op::NotIn(canonical_set(values.into())?))
    }

    /// Builds a `BETWEEN` operator, rejecting empty ranges.
    pub fn between(lo: Value, hi: Value) -> Result<Self, BexprError> {
        if lo > hi {
            return Err(BexprError::EmptyRange { lo, hi });
        }
        Ok(Op::Between(lo, hi))
    }

    /// Whether a present value `v` satisfies this operator.
    #[inline]
    pub fn matches(&self, v: Value) -> bool {
        match self {
            Op::Eq(x) => v == *x,
            Op::Ne(x) => v != *x,
            Op::Lt(x) => v < *x,
            Op::Le(x) => v <= *x,
            Op::Gt(x) => v > *x,
            Op::Ge(x) => v >= *x,
            Op::Between(lo, hi) => *lo <= v && v <= *hi,
            Op::In(set) => set.binary_search(&v).is_ok(),
            Op::NotIn(set) => set.binary_search(&v).is_err(),
        }
    }

    /// The set of values inside `domain` that satisfy this operator, as a
    /// minimal list of disjoint, sorted, inclusive intervals. An empty list
    /// means the predicate is unsatisfiable within the domain.
    ///
    /// This is the geometric view used by the BE-Tree clustering directories
    /// and by the interval-stabbing event index.
    pub fn satisfying_intervals(&self, domain: Domain) -> Vec<(Value, Value)> {
        let (dmin, dmax) = (domain.min(), domain.max());
        let clip = |lo: Value, hi: Value| -> Option<(Value, Value)> {
            let lo = lo.max(dmin);
            let hi = hi.min(dmax);
            (lo <= hi).then_some((lo, hi))
        };
        match self {
            Op::Eq(x) => clip(*x, *x).into_iter().collect(),
            Op::Ne(x) => {
                let mut out = Vec::with_capacity(2);
                if let Some(iv) = clip(dmin, x.saturating_sub(1)) {
                    out.push(iv);
                }
                if let Some(iv) = clip(x.saturating_add(1), dmax) {
                    out.push(iv);
                }
                out
            }
            Op::Lt(x) => clip(dmin, x.saturating_sub(1)).into_iter().collect(),
            Op::Le(x) => clip(dmin, *x).into_iter().collect(),
            Op::Gt(x) => clip(x.saturating_add(1), dmax).into_iter().collect(),
            Op::Ge(x) => clip(*x, dmax).into_iter().collect(),
            Op::Between(lo, hi) => clip(*lo, *hi).into_iter().collect(),
            Op::In(set) => {
                // Merge consecutive values into runs.
                let mut out: Vec<(Value, Value)> = Vec::new();
                for &v in set.iter() {
                    if !domain.contains(v) {
                        continue;
                    }
                    match out.last_mut() {
                        Some((_, hi)) if *hi + 1 == v => *hi = v,
                        _ => out.push((v, v)),
                    }
                }
                out
            }
            Op::NotIn(set) => {
                let mut out = Vec::new();
                let mut cursor = dmin;
                for &v in set.iter() {
                    if v < cursor {
                        continue;
                    }
                    if v > dmax {
                        break;
                    }
                    if let Some(iv) = clip(cursor, v - 1) {
                        out.push(iv);
                    }
                    cursor = v + 1;
                }
                if let Some(iv) = clip(cursor, dmax) {
                    out.push(iv);
                }
                out
            }
        }
    }

    /// The complement of [`Op::satisfying_intervals`] within `domain`: the
    /// values that *violate* the operator, as sorted disjoint inclusive
    /// intervals. Used by the encoding layer to index broad predicates
    /// (selectivity > ½) by their violations instead of their satisfactions.
    pub fn violating_intervals(&self, domain: Domain) -> Vec<(Value, Value)> {
        let mut out = Vec::new();
        let mut cursor = domain.min();
        for (lo, hi) in self.satisfying_intervals(domain) {
            if cursor < lo {
                out.push((cursor, lo - 1));
            }
            cursor = hi + 1;
        }
        if cursor <= domain.max() {
            out.push((cursor, domain.max()));
        }
        out
    }

    /// Fraction of the domain this operator accepts — the BE-Tree cost model
    /// and the workload generator use this as the predicate selectivity.
    pub fn selectivity(&self, domain: Domain) -> f64 {
        let total = domain.cardinality() as f64;
        let satisfied: u64 = self
            .satisfying_intervals(domain)
            .iter()
            .map(|(lo, hi)| (hi - lo) as u64 + 1)
            .sum();
        satisfied as f64 / total
    }

    /// Short operator mnemonic used by `Debug`/stats output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Eq(_) => "eq",
            Op::Ne(_) => "ne",
            Op::Lt(_) => "lt",
            Op::Le(_) => "le",
            Op::Gt(_) => "gt",
            Op::Ge(_) => "ge",
            Op::Between(..) => "between",
            Op::In(_) => "in",
            Op::NotIn(_) => "notin",
        }
    }
}

fn canonical_set(mut values: Vec<Value>) -> Result<Box<[Value]>, BexprError> {
    if values.is_empty() {
        return Err(BexprError::EmptySet);
    }
    values.sort_unstable();
    values.dedup();
    Ok(values.into_boxed_slice())
}

/// A predicate: one [`Op`] applied to one attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Predicate {
    /// Attribute the predicate constrains.
    pub attr: AttrId,
    /// Comparison applied to the event's value for [`Self::attr`].
    pub op: Op,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(attr: AttrId, op: Op) -> Self {
        Self { attr, op }
    }

    /// Whether the predicate is satisfied by an event that assigns `value` to
    /// [`Self::attr`]. `None` (attribute absent) never satisfies — including
    /// negated operators; see the crate-level semantics note.
    #[inline]
    pub fn matches(&self, value: Option<Value>) -> bool {
        match value {
            Some(v) => self.op.matches(v),
            None => false,
        }
    }

    /// Validates the predicate against `schema`: the attribute must exist and
    /// all operand values must fall inside its domain (so that the discrete
    /// encoding of the predicate is lossless).
    pub fn validate(&self, schema: &Schema) -> Result<(), BexprError> {
        let info = schema
            .attr(self.attr)
            .ok_or(BexprError::InvalidAttrId(self.attr))?;
        let domain = info.domain();
        let check = |v: Value| -> Result<(), BexprError> {
            if domain.contains(v) {
                Ok(())
            } else {
                Err(BexprError::ValueOutOfDomain {
                    attr: self.attr,
                    value: v,
                })
            }
        };
        match &self.op {
            Op::Eq(x) | Op::Ne(x) | Op::Lt(x) | Op::Le(x) | Op::Gt(x) | Op::Ge(x) => check(*x),
            Op::Between(lo, hi) => {
                if lo > hi {
                    return Err(BexprError::EmptyRange { lo: *lo, hi: *hi });
                }
                check(*lo)?;
                check(*hi)
            }
            Op::In(set) | Op::NotIn(set) => {
                if set.is_empty() {
                    return Err(BexprError::EmptySet);
                }
                set.iter().copied().try_for_each(check)
            }
        }
    }

    /// Renders the predicate with the attribute's registered name.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> PredicateDisplay<'a> {
        PredicateDisplay { pred: self, schema }
    }
}

/// `Display` adaptor produced by [`Predicate::display`]; the output parses
/// back through [`crate::parser`].
pub struct PredicateDisplay<'a> {
    pred: &'a Predicate,
    schema: &'a Schema,
}

impl fmt::Display for PredicateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self
            .schema
            .attr(self.pred.attr)
            .map(|a| a.name())
            .unwrap_or("<invalid>");
        let fmt_set = |f: &mut fmt::Formatter<'_>, set: &[Value]| -> fmt::Result {
            write!(f, "{{")?;
            for (i, v) in set.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}}")
        };
        match &self.pred.op {
            Op::Eq(x) => write!(f, "{name} = {x}"),
            Op::Ne(x) => write!(f, "{name} != {x}"),
            Op::Lt(x) => write!(f, "{name} < {x}"),
            Op::Le(x) => write!(f, "{name} <= {x}"),
            Op::Gt(x) => write!(f, "{name} > {x}"),
            Op::Ge(x) => write!(f, "{name} >= {x}"),
            Op::Between(lo, hi) => write!(f, "{name} BETWEEN {lo} AND {hi}"),
            Op::In(set) => {
                write!(f, "{name} IN ")?;
                fmt_set(f, set)
            }
            Op::NotIn(set) => {
                write!(f, "{name} NOT IN ")?;
                fmt_set(f, set)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> Domain {
        Domain::new(0, 99)
    }

    /// Brute-force check that `satisfying_intervals` agrees with `matches`
    /// on every value of the domain.
    fn assert_intervals_consistent(op: &Op, domain: Domain) {
        let ivs = op.satisfying_intervals(domain);
        // Intervals must be sorted, disjoint, non-adjacent, and in-domain.
        for w in ivs.windows(2) {
            assert!(
                w[0].1 + 1 < w[1].0,
                "{op:?}: intervals {w:?} overlap or touch"
            );
        }
        for &(lo, hi) in &ivs {
            assert!(lo <= hi && domain.contains(lo) && domain.contains(hi));
        }
        for v in domain.min()..=domain.max() {
            let in_iv = ivs.iter().any(|&(lo, hi)| lo <= v && v <= hi);
            assert_eq!(in_iv, op.matches(v), "{op:?} disagrees at {v}");
        }
    }

    #[test]
    fn relational_ops_match() {
        assert!(Op::Eq(5).matches(5) && !Op::Eq(5).matches(6));
        assert!(Op::Ne(5).matches(6) && !Op::Ne(5).matches(5));
        assert!(Op::Lt(5).matches(4) && !Op::Lt(5).matches(5));
        assert!(Op::Le(5).matches(5) && !Op::Le(5).matches(6));
        assert!(Op::Gt(5).matches(6) && !Op::Gt(5).matches(5));
        assert!(Op::Ge(5).matches(5) && !Op::Ge(5).matches(4));
    }

    #[test]
    fn between_and_sets_match() {
        let b = Op::between(3, 7).unwrap();
        assert!(b.matches(3) && b.matches(7) && !b.matches(8) && !b.matches(2));
        let i = Op::in_set(vec![9, 1, 5, 1]).unwrap();
        assert!(i.matches(1) && i.matches(5) && i.matches(9) && !i.matches(2));
        let n = Op::not_in_set(vec![1, 5]).unwrap();
        assert!(!n.matches(1) && n.matches(2));
    }

    #[test]
    fn canonical_set_sorts_and_dedups() {
        match Op::in_set(vec![3, 1, 3, 2]).unwrap() {
            Op::In(set) => assert_eq!(&*set, &[1, 2, 3]),
            _ => unreachable!(),
        }
        assert_eq!(Op::in_set(Vec::new()), Err(BexprError::EmptySet));
        assert_eq!(
            Op::between(9, 2),
            Err(BexprError::EmptyRange { lo: 9, hi: 2 })
        );
    }

    #[test]
    fn intervals_cover_all_operators() {
        let ops = [
            Op::Eq(50),
            Op::Ne(50),
            Op::Lt(50),
            Op::Le(50),
            Op::Gt(50),
            Op::Ge(50),
            Op::Between(10, 20),
            Op::in_set(vec![1, 2, 3, 10, 50]).unwrap(),
            Op::not_in_set(vec![0, 40, 99]).unwrap(),
        ];
        for op in &ops {
            assert_intervals_consistent(op, dom());
        }
    }

    #[test]
    fn intervals_at_domain_edges() {
        // Ne at the domain boundary produces a single interval.
        assert_eq!(Op::Ne(0).satisfying_intervals(dom()), vec![(1, 99)]);
        assert_eq!(Op::Ne(99).satisfying_intervals(dom()), vec![(0, 98)]);
        // Unsatisfiable within the domain → empty.
        assert!(Op::Eq(500).satisfying_intervals(dom()).is_empty());
        assert!(Op::Lt(0).satisfying_intervals(dom()).is_empty());
        // NotIn of entire 1-value domain is empty.
        let tiny = Domain::new(5, 5);
        assert!(Op::not_in_set(vec![5])
            .unwrap()
            .satisfying_intervals(tiny)
            .is_empty());
    }

    #[test]
    fn in_set_merges_runs() {
        let op = Op::in_set(vec![1, 2, 3, 7, 9, 10]).unwrap();
        assert_eq!(
            op.satisfying_intervals(dom()),
            vec![(1, 3), (7, 7), (9, 10)]
        );
    }

    #[test]
    fn selectivity_values() {
        let d = Domain::new(0, 99);
        assert!((Op::Eq(5).selectivity(d) - 0.01).abs() < 1e-12);
        assert!((Op::Ne(5).selectivity(d) - 0.99).abs() < 1e-12);
        assert!((Op::Between(0, 49).selectivity(d) - 0.5).abs() < 1e-12);
        assert!((Op::Ge(0).selectivity(d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predicate_absent_attribute_never_matches() {
        let p = Predicate::new(AttrId(0), Op::Ne(5));
        assert!(!p.matches(None), "negation must not match absent attribute");
        assert!(p.matches(Some(4)));
    }

    #[test]
    fn validation_against_schema() {
        let mut schema = Schema::new();
        let a = schema.add_attr("x", Domain::new(0, 9)).unwrap();
        assert!(Predicate::new(a, Op::Eq(5)).validate(&schema).is_ok());
        assert!(matches!(
            Predicate::new(a, Op::Eq(50)).validate(&schema),
            Err(BexprError::ValueOutOfDomain { .. })
        ));
        assert!(matches!(
            Predicate::new(AttrId(7), Op::Eq(1)).validate(&schema),
            Err(BexprError::InvalidAttrId(_))
        ));
        assert!(matches!(
            Predicate::new(a, Op::Between(8, 2)).validate(&schema),
            Err(BexprError::EmptyRange { .. })
        ));
    }

    #[test]
    fn display_forms() {
        let mut schema = Schema::new();
        let a = schema.add_attr("age", Domain::new(0, 120)).unwrap();
        let cases = [
            (Op::Eq(5), "age = 5"),
            (Op::Ne(5), "age != 5"),
            (Op::Le(5), "age <= 5"),
            (Op::Between(1, 9), "age BETWEEN 1 AND 9"),
            (Op::in_set(vec![2, 1]).unwrap(), "age IN {1, 2}"),
            (Op::not_in_set(vec![3]).unwrap(), "age NOT IN {3}"),
        ];
        for (op, expect) in cases {
            let p = Predicate::new(a, op);
            assert_eq!(p.display(&schema).to_string(), expect);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_op() -> impl Strategy<Value = Op> {
        let v = -5i64..105i64;
        prop_oneof![
            v.clone().prop_map(Op::Eq),
            v.clone().prop_map(Op::Ne),
            v.clone().prop_map(Op::Lt),
            v.clone().prop_map(Op::Le),
            v.clone().prop_map(Op::Gt),
            v.clone().prop_map(Op::Ge),
            (v.clone(), 0i64..30i64).prop_map(|(lo, w)| Op::Between(lo, lo + w)),
            proptest::collection::vec(v.clone(), 1..8)
                .prop_map(|vs| Op::in_set(vs).expect("non-empty")),
            proptest::collection::vec(v, 1..8)
                .prop_map(|vs| Op::not_in_set(vs).expect("non-empty")),
        ]
    }

    proptest! {
        /// For every operator and every domain value, interval membership and
        /// direct evaluation agree.
        #[test]
        fn intervals_equal_pointwise_eval(op in arb_op(), probe in 0i64..100i64) {
            let domain = Domain::new(0, 99);
            let ivs = op.satisfying_intervals(domain);
            let in_iv = ivs.iter().any(|&(lo, hi)| lo <= probe && probe <= hi);
            prop_assert_eq!(in_iv, op.matches(probe));
        }

        /// Selectivity is always a valid probability.
        #[test]
        fn selectivity_in_unit_interval(op in arb_op()) {
            let s = op.selectivity(Domain::new(0, 99));
            prop_assert!((0.0..=1.0).contains(&s));
        }

        /// Satisfying and violating intervals exactly partition the domain.
        #[test]
        fn violations_complement_satisfactions(op in arb_op(), probe in 0i64..100i64) {
            let domain = Domain::new(0, 99);
            let violated = op
                .violating_intervals(domain)
                .iter()
                .any(|&(lo, hi)| lo <= probe && probe <= hi);
            prop_assert_eq!(violated, !op.matches(probe));
        }
    }
}
