//! The engine-agnostic matching interface.

use crate::{Event, SubId};

/// A matching engine: given an event, report every subscription it satisfies.
///
/// Implementations must return the matching [`SubId`]s in **ascending order**
/// with no duplicates — this makes result sets directly comparable across
/// engines (the integration tests assert pairwise agreement between every
/// engine in the workspace) and lets downstream consumers merge streams
/// cheaply.
pub trait Matcher: Send + Sync {
    /// All subscriptions matched by `ev`, ascending, deduplicated.
    fn match_event(&self, ev: &Event) -> Vec<SubId>;

    /// Matches a batch of events, one result row per event, preserving the
    /// input order. The default implementation loops over
    /// [`Matcher::match_event`]; engines with batch-level optimizations
    /// (OSR's union pruning, parallel fan-out) override it.
    fn match_batch(&self, events: &[Event]) -> Vec<Vec<SubId>> {
        events.iter().map(|ev| self.match_event(ev)).collect()
    }

    /// Engine name used in benchmark tables and logs.
    fn name(&self) -> &'static str;

    /// Number of subscriptions currently indexed.
    fn len(&self) -> usize;

    /// Whether the engine holds no subscriptions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Normalizes a raw match list into the canonical form required by
/// [`Matcher::match_event`]: ascending, deduplicated.
pub fn normalize_matches(mut ids: Vec<SubId>) -> Vec<SubId> {
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrId, Event};

    struct Fixed(Vec<SubId>);

    impl Matcher for Fixed {
        fn match_event(&self, _ev: &Event) -> Vec<SubId> {
            self.0.clone()
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let out = normalize_matches(vec![SubId(3), SubId(1), SubId(3), SubId(2)]);
        assert_eq!(out, vec![SubId(1), SubId(2), SubId(3)]);
    }

    #[test]
    fn default_batch_preserves_order() {
        let m = Fixed(vec![SubId(7)]);
        let ev = Event::new(vec![(AttrId(0), 1)]).unwrap();
        let rows = m.match_batch(&[ev.clone(), ev]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![SubId(7)]);
        assert!(!m.is_empty());
    }
}
