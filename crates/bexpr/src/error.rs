//! Error types for the data-model layer.

use crate::{AttrId, Value};
use std::fmt;

/// Errors raised while constructing or parsing expressions, events, and
/// schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BexprError {
    /// An attribute name was registered twice.
    DuplicateAttr(String),
    /// An attribute name is unknown to the schema.
    UnknownAttr(String),
    /// An attribute id is out of range for the schema.
    InvalidAttrId(AttrId),
    /// A domain was declared with `min > max`.
    EmptyDomain { min: Value, max: Value },
    /// A domain so wide that `max - min` overflows the value type; such
    /// domains cannot be enumerated or measured for selectivity.
    DomainTooWide { min: Value, max: Value },
    /// A `BETWEEN lo AND hi` predicate with `lo > hi`.
    EmptyRange { lo: Value, hi: Value },
    /// An `IN { }` / `NOT IN { }` predicate with an empty set.
    EmptySet,
    /// A predicate references a value outside the attribute's domain.
    ValueOutOfDomain { attr: AttrId, value: Value },
    /// A subscription with no predicates.
    EmptySubscription,
    /// An event assigned the same attribute twice.
    DuplicateEventAttr(AttrId),
    /// An event with no attribute/value pairs.
    EmptyEvent,
    /// Parse failure: message plus byte offset into the input.
    Parse { message: String, offset: usize },
}

impl fmt::Display for BexprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BexprError::DuplicateAttr(name) => {
                write!(f, "attribute `{name}` is already registered")
            }
            BexprError::UnknownAttr(name) => write!(f, "unknown attribute `{name}`"),
            BexprError::InvalidAttrId(id) => write!(f, "attribute id {id} is out of range"),
            BexprError::EmptyDomain { min, max } => {
                write!(f, "empty domain: min {min} > max {max}")
            }
            BexprError::DomainTooWide { min, max } => {
                write!(f, "domain [{min}, {max}] is too wide to represent")
            }
            BexprError::EmptyRange { lo, hi } => {
                write!(f, "empty BETWEEN range: lo {lo} > hi {hi}")
            }
            BexprError::EmptySet => write!(f, "IN / NOT IN set must be non-empty"),
            BexprError::ValueOutOfDomain { attr, value } => {
                write!(f, "value {value} is outside the domain of attribute {attr}")
            }
            BexprError::EmptySubscription => {
                write!(f, "a subscription must have at least one predicate")
            }
            BexprError::DuplicateEventAttr(id) => {
                write!(f, "event assigns attribute {id} more than once")
            }
            BexprError::EmptyEvent => write!(f, "an event must carry at least one attribute"),
            BexprError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for BexprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = BexprError::EmptyRange { lo: 9, hi: 3 };
        assert!(err.to_string().contains("lo 9 > hi 3"));
        let err = BexprError::Parse {
            message: "expected AND".into(),
            offset: 12,
        };
        assert!(err.to_string().contains("byte 12"));
    }
}
