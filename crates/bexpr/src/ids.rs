//! Strongly-typed identifiers.
//!
//! All identifiers are dense `u32` indexes assigned by the owning registry
//! (attributes by [`crate::Schema`], subscriptions by the application or the
//! workload generator, predicates by the encoding layer). `u32` keeps hot
//! structures half the size of `usize` on 64-bit targets, which matters when
//! the corpus reaches millions of expressions.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifier of an attribute (a dimension of the discrete space).
    AttrId,
    "a"
);
define_id!(
    /// Identifier of a subscription (Boolean expression).
    SubId,
    "s"
);
define_id!(
    /// Identifier of a distinct predicate in the corpus-wide predicate space.
    PredId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn index_round_trip() {
        let id = AttrId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, AttrId(42));
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(SubId(1));
        set.insert(SubId(1));
        set.insert(SubId(2));
        assert_eq!(set.len(), 2);
        assert!(SubId(1) < SubId(2));
    }

    #[test]
    fn debug_uses_prefix() {
        assert_eq!(format!("{:?}", PredId(7)), "p7");
        assert_eq!(format!("{:?}", AttrId(3)), "a3");
        assert_eq!(format!("{:?}", SubId(9)), "s9");
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn from_index_overflow_panics() {
        let _ = AttrId::from_index(usize::MAX);
    }
}
