//! Workload trace persistence.
//!
//! Experiments become reproducible artifacts when the exact corpus and
//! event stream can be written down and replayed. A trace is a line-based
//! text file (the same syntax the parser accepts, so traces are editable by
//! hand):
//!
//! ```text
//! # apcm-trace v1
//! attr <name> <min> <max>
//! sub <id> <conjunction>
//! event <attr = value, ...>
//! ```
//!
//! Blank lines and `#` comments are ignored on load.

use crate::Workload;
use apcm_bexpr::{parser, Domain, Event, Schema, SubId, Subscription};
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// A self-contained, replayable workload: schema, corpus, event stream.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The attribute dictionary.
    pub schema: Schema,
    /// The subscription corpus.
    pub subs: Vec<Subscription>,
    /// The event stream, in arrival order.
    pub events: Vec<Event>,
}

/// Errors raised while loading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed line, 1-based line number plus message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl Trace {
    /// Captures a generated workload plus the first `n_events` of its
    /// stream.
    pub fn from_workload(wl: &Workload, n_events: usize) -> Self {
        Self {
            schema: wl.schema.clone(),
            subs: wl.subs.clone(),
            events: wl.events(n_events),
        }
    }

    /// Writes the trace in the text format.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "# apcm-trace v1")?;
        for (_, info) in self.schema.iter() {
            writeln!(
                w,
                "attr {} {} {}",
                info.name(),
                info.domain().min(),
                info.domain().max()
            )?;
        }
        for sub in &self.subs {
            writeln!(w, "sub {} {}", sub.id(), sub.display(&self.schema))?;
        }
        for ev in &self.events {
            writeln!(w, "event {}", ev.display(&self.schema))?;
        }
        Ok(())
    }

    /// Reads a trace written by [`Trace::save`] (or by hand).
    pub fn load<R: BufRead>(r: R) -> Result<Self, TraceError> {
        let mut schema = Schema::new();
        let mut subs = Vec::new();
        let mut events = Vec::new();
        for (idx, line) in r.lines().enumerate() {
            let line = line?;
            let lineno = idx + 1;
            let text = line.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let err = |message: String| TraceError::Parse {
                line: lineno,
                message,
            };
            let (kind, rest) = text
                .split_once(' ')
                .ok_or_else(|| err("expected `<kind> <payload>`".into()))?;
            match kind {
                "attr" => {
                    let mut parts = rest.split_whitespace();
                    let name = parts
                        .next()
                        .ok_or_else(|| err("attr needs a name".into()))?;
                    let min: i64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("attr needs an integer min".into()))?;
                    let max: i64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("attr needs an integer max".into()))?;
                    let domain =
                        Domain::try_new(min, max).map_err(|e| err(format!("bad domain: {e}")))?;
                    schema
                        .add_attr(name, domain)
                        .map_err(|e| err(format!("bad attribute: {e}")))?;
                }
                "sub" => {
                    let (id_text, expr) = rest
                        .split_once(' ')
                        .ok_or_else(|| err("sub needs `<id> <expression>`".into()))?;
                    let id: u32 = id_text
                        .parse()
                        .map_err(|_| err(format!("bad subscription id `{id_text}`")))?;
                    let sub = parser::parse_subscription_with_id(&schema, SubId(id), expr)
                        .map_err(|e| err(format!("bad expression: {e}")))?;
                    subs.push(sub);
                }
                "event" => {
                    let ev = parser::parse_event(&schema, rest)
                        .map_err(|e| err(format!("bad event: {e}")))?;
                    events.push(ev);
                }
                other => return Err(err(format!("unknown record kind `{other}`"))),
            }
        }
        Ok(Self {
            schema,
            subs,
            events,
        })
    }

    /// Saves to a file path.
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.save(io::BufWriter::new(file))
    }

    /// Loads from a file path.
    pub fn load_from_path(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path)?;
        Self::load(io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;

    fn round_trip(trace: &Trace) -> Trace {
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        Trace::load(buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trips_generated_workload() {
        let wl = WorkloadSpec::new(200).seed(91).build();
        let trace = Trace::from_workload(&wl, 50);
        let loaded = round_trip(&trace);
        assert_eq!(loaded.schema.dims(), trace.schema.dims());
        assert_eq!(loaded.subs, trace.subs);
        assert_eq!(loaded.events, trace.events);
    }

    #[test]
    fn round_trips_negative_domains() {
        let mut schema = Schema::new();
        schema.add_attr("temp", Domain::new(-50, 60)).unwrap();
        let subs =
            vec![
                parser::parse_subscription_with_id(&schema, SubId(3), "temp BETWEEN -10 AND 5")
                    .unwrap(),
            ];
        let events = vec![parser::parse_event(&schema, "temp = -7").unwrap()];
        let trace = Trace {
            schema,
            subs,
            events,
        };
        let loaded = round_trip(&trace);
        assert_eq!(loaded.subs, trace.subs);
        assert_eq!(loaded.events, trace.events);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
# a comment

attr x 0 9
# another
sub 5 x = 3

event x = 3
";
        let trace = Trace::load(text.as_bytes()).unwrap();
        assert_eq!(trace.subs.len(), 1);
        assert_eq!(trace.events.len(), 1);
        assert!(trace.subs[0].matches(&trace.events[0]));
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        for (text, expect_line) in [
            ("attr x zero 9", 1),
            ("attr x 9 0", 1),
            ("attr x 0 9\nsub nope x = 1", 2),
            ("attr x 0 9\nsub 1 x = 99", 2),
            ("attr x 0 9\n\nevent y = 1", 3),
            ("bogus line", 1),
            ("attr x 0 9\nattr x 0 5", 2),
        ] {
            match Trace::load(text.as_bytes()) {
                Err(TraceError::Parse { line, .. }) => {
                    assert_eq!(line, expect_line, "input: {text:?}")
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let wl = WorkloadSpec::new(50).seed(92).build();
        let trace = Trace::from_workload(&wl, 10);
        let path = std::env::temp_dir().join("apcm_trace_test.txt");
        trace.save_to_path(&path).unwrap();
        let loaded = Trace::load_from_path(&path).unwrap();
        assert_eq!(loaded.subs, trace.subs);
        assert_eq!(loaded.events, trace.events);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn loaded_trace_is_matchable() {
        let wl = WorkloadSpec::new(100)
            .seed(93)
            .planted_fraction(0.5)
            .build();
        let trace = round_trip(&Trace::from_workload(&wl, 30));
        // Matching over the reloaded trace equals matching the original.
        for (orig, loaded) in wl.events(30).iter().zip(trace.events.iter()) {
            let expect: Vec<SubId> = wl
                .subs
                .iter()
                .filter(|s| s.matches(orig))
                .map(|s| s.id())
                .collect();
            let got: Vec<SubId> = trace
                .subs
                .iter()
                .filter(|s| s.matches(loaded))
                .map(|s| s.id())
                .collect();
            assert_eq!(got, expect);
        }
    }
}
