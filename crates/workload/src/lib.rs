//! BE-Gen-style workload generation.
//!
//! The paper evaluates matching algorithms on synthetic workloads produced by
//! the authors' BE-Gen tool, sweeping: corpus size, expression size, event
//! size, dimensionality, domain cardinality, operator mix, value skew
//! (uniform vs Zipf), and matching probability. This crate is the
//! reproduction's substitute (see DESIGN.md): a deterministic, seedable
//! generator exposing the same axes.
//!
//! * [`WorkloadSpec`] — the parameter set, one field per evaluation axis,
//! * [`Workload`] — a generated corpus (schema + subscriptions),
//! * [`EventStream`] — an infinite deterministic event iterator with
//!   *planted* matches to control matching probability,
//! * [`DriftingStream`] — a stream whose value skew rotates over time, used
//!   by the adaptivity experiments,
//! * [`Zipf`] — a bounded Zipf sampler.
//!
//! ```
//! use apcm_workload::WorkloadSpec;
//!
//! let wl = WorkloadSpec::new(1_000).seed(7).build();
//! assert_eq!(wl.subs.len(), 1_000);
//! let events = wl.events(100);
//! assert_eq!(events.len(), 100);
//! // Same seed → same workload.
//! assert_eq!(WorkloadSpec::new(1_000).seed(7).build().subs, wl.subs);
//! ```

pub mod drift;
pub mod generator;
pub mod spec;
pub mod trace;
pub mod zipf;

pub use drift::DriftingStream;
pub use generator::{EventStream, Workload};
pub use spec::{OperatorMix, ValueDist, WorkloadSpec};
pub use trace::{Trace, TraceError};
pub use zipf::Zipf;

/// Builder alias kept for API discoverability: `WorkloadSpec` *is* the
/// builder (fluent setters, terminal [`WorkloadSpec::build`]).
pub type WorkloadBuilder = WorkloadSpec;
