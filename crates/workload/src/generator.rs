//! Corpus and event-stream generation.

use crate::{ValueDist, WorkloadSpec, Zipf};
use apcm_bexpr::{AttrId, Domain, Event, Op, Predicate, Schema, SubId, Subscription, Value};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A generated corpus: the schema and the subscriptions, plus the spec that
/// produced them (kept for event-stream construction).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Uniform schema with `spec.dims` attributes of `spec.cardinality`
    /// values each.
    pub schema: Schema,
    /// The Boolean-expression corpus, ids `0..n_subs`.
    pub subs: Vec<Subscription>,
    /// The generating parameters.
    pub spec: WorkloadSpec,
}

impl WorkloadSpec {
    /// Generates the corpus described by this spec.
    ///
    /// # Panics
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn build(&self) -> Workload {
        if let Err(msg) = self.validate() {
            panic!("invalid workload spec: {msg}");
        }
        let schema = Schema::uniform(self.dims, self.cardinality);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sampler = Samplers::new(self);
        let subs = (0..self.n_subs)
            .map(|i| sampler.gen_subscription(SubId::from_index(i), &schema, self, &mut rng))
            .collect();
        Workload {
            schema,
            subs,
            spec: self.clone(),
        }
    }
}

impl Workload {
    /// An infinite deterministic event stream for this corpus. The stream
    /// seed is derived from the spec seed so corpus and stream are
    /// independent draws.
    pub fn stream(&self) -> EventStream<'_> {
        EventStream::new(self, self.spec.seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// The first `n` events of [`Workload::stream`].
    pub fn events(&self, n: usize) -> Vec<Event> {
        self.stream().take(n).collect()
    }
}

/// Shared samplers derived from a spec: attribute popularity and value skew.
pub(crate) struct Samplers {
    attr: Zipf,
    value: Option<Zipf>,
}

impl Samplers {
    pub(crate) fn new(spec: &WorkloadSpec) -> Self {
        Self {
            attr: Zipf::new(spec.dims, spec.attr_skew),
            value: match spec.values {
                ValueDist::Uniform => None,
                ValueDist::Zipf(s) => Some(Zipf::new(spec.cardinality as usize, s)),
            },
        }
    }

    /// Samples a value from `domain` under the spec's value distribution,
    /// shifted by `phase` ranks (used by the drifting stream; 0 otherwise).
    pub(crate) fn value(&self, rng: &mut StdRng, domain: Domain, phase: u64) -> Value {
        let card = domain.cardinality();
        let rank = match &self.value {
            None => rng.gen_range(0..card),
            Some(z) => z.sample(rng) as u64,
        };
        domain.min() + ((rank + phase) % card) as Value
    }

    /// Samples `n` distinct attributes under the popularity distribution.
    pub(crate) fn distinct_attrs(&self, rng: &mut StdRng, n: usize, dims: usize) -> Vec<AttrId> {
        debug_assert!(n <= dims);
        // Dense request: a partial Fisher–Yates shuffle is cheaper and
        // cannot stall on collisions.
        if n * 3 >= dims {
            let mut all: Vec<u32> = (0..dims as u32).collect();
            for i in 0..n {
                let j = rng.gen_range(i..dims);
                all.swap(i, j);
            }
            all.truncate(n);
            return all.into_iter().map(AttrId).collect();
        }
        let mut picked: Vec<u32> = Vec::with_capacity(n);
        let mut attempts = 0usize;
        while picked.len() < n {
            let candidate = self.attr.sample(rng) as u32;
            if !picked.contains(&candidate) {
                picked.push(candidate);
            }
            attempts += 1;
            if attempts > 64 * n {
                // Heavy skew can make the popular head collide forever; fall
                // back to uniform fill for the remainder.
                for a in 0..dims as u32 {
                    if picked.len() == n {
                        break;
                    }
                    if !picked.contains(&a) {
                        picked.push(a);
                    }
                }
            }
        }
        picked.into_iter().map(AttrId).collect()
    }

    fn gen_subscription(
        &self,
        id: SubId,
        schema: &Schema,
        spec: &WorkloadSpec,
        rng: &mut StdRng,
    ) -> Subscription {
        let k = rng.gen_range(spec.sub_preds.0..=spec.sub_preds.1);
        let attrs = self.distinct_attrs(rng, k, spec.dims);
        let preds = attrs
            .into_iter()
            .map(|attr| Predicate::new(attr, self.gen_op(rng, schema.domain(attr), spec)))
            .collect();
        Subscription::new(id, preds).expect("k ≥ 1 by validation")
    }

    fn gen_op(&self, rng: &mut StdRng, domain: Domain, spec: &WorkloadSpec) -> Op {
        let mix = &spec.operators;
        let mut pick = rng.gen_range(0.0..mix.total());
        let v = |rng: &mut StdRng| self.value(rng, domain, 0);
        let distinct_values = |rng: &mut StdRng, n: usize| -> Vec<Value> {
            let n = n.min(domain.cardinality() as usize);
            let mut out: Vec<Value> = Vec::with_capacity(n);
            let mut attempts = 0;
            while out.len() < n {
                let candidate = self.value(rng, domain, 0);
                if !out.contains(&candidate) {
                    out.push(candidate);
                }
                attempts += 1;
                if attempts > 64 * n {
                    // Tiny or heavily-skewed domains: fill sequentially.
                    let mut c = domain.min();
                    while out.len() < n && c <= domain.max() {
                        if !out.contains(&c) {
                            out.push(c);
                        }
                        c += 1;
                    }
                }
            }
            out
        };

        pick -= mix.eq;
        if pick < 0.0 {
            return Op::Eq(v(rng));
        }
        pick -= mix.ne;
        if pick < 0.0 {
            return Op::Ne(v(rng));
        }
        pick -= mix.lt;
        if pick < 0.0 {
            if domain.cardinality() == 1 {
                return Op::Eq(domain.min());
            }
            // Keep the predicate satisfiable: `< min` accepts nothing.
            let x = v(rng).max(domain.min() + 1);
            return if rng.gen_bool(0.5) {
                Op::Lt(x)
            } else {
                Op::Le(x - 1)
            };
        }
        pick -= mix.gt;
        if pick < 0.0 {
            if domain.cardinality() == 1 {
                return Op::Eq(domain.min());
            }
            let x = v(rng).min(domain.max() - 1);
            return if rng.gen_bool(0.5) {
                Op::Gt(x)
            } else {
                Op::Ge(x + 1)
            };
        }
        pick -= mix.between;
        if pick < 0.0 {
            let width = ((spec.range_width * domain.cardinality() as f64) as Value).max(1);
            let lo = v(rng);
            let hi = (lo + width - 1).min(domain.max());
            return Op::Between(lo.min(hi), hi);
        }
        pick -= mix.in_set;
        if pick < 0.0 {
            return Op::in_set(distinct_values(rng, spec.set_size)).expect("set_size ≥ 1");
        }
        Op::not_in_set(distinct_values(rng, spec.set_size)).expect("set_size ≥ 1")
    }
}

/// Infinite deterministic event iterator over a [`Workload`].
///
/// A `planted_fraction` of events are *planted*: generated to satisfy a
/// uniformly-chosen subscription (each of its predicates is assigned a
/// satisfying value, remaining event attributes are random). Planting pins
/// the lower bound of the matching probability independently of corpus
/// geometry, which is how the matching-probability axis of the evaluation is
/// swept.
pub struct EventStream<'a> {
    workload: &'a Workload,
    samplers: Samplers,
    rng: StdRng,
    /// Value-rank rotation applied to non-planted values; the drifting
    /// stream advances this.
    pub(crate) phase: u64,
}

impl<'a> EventStream<'a> {
    /// Creates a stream over `workload` with an explicit seed.
    pub fn new(workload: &'a Workload, seed: u64) -> Self {
        Self {
            workload,
            samplers: Samplers::new(&workload.spec),
            rng: StdRng::seed_from_u64(seed),
            phase: 0,
        }
    }

    /// Generates the next event.
    pub fn next_event(&mut self) -> Event {
        let spec = &self.workload.spec;
        let schema = &self.workload.schema;
        let planted = !self.workload.subs.is_empty()
            && spec.planted_fraction > 0.0
            && self.rng.gen_bool(spec.planted_fraction);

        let mut pairs: Vec<(AttrId, Value)> = Vec::with_capacity(spec.event_size);
        if planted {
            let sub = &self.workload.subs[self.rng.gen_range(0..self.workload.subs.len())];
            for pred in sub.predicates() {
                let domain = schema.domain(pred.attr);
                pairs.push((pred.attr, satisfying_value(&mut self.rng, pred, domain)));
            }
        }
        // Fill with random attributes up to the event size.
        let mut guard = 0usize;
        while pairs.len() < spec.event_size {
            let attr = AttrId(self.samplers.attr.sample(&mut self.rng) as u32);
            if pairs.iter().all(|&(a, _)| a != attr) {
                let v = self
                    .samplers
                    .value(&mut self.rng, schema.domain(attr), self.phase);
                pairs.push((attr, v));
            }
            guard += 1;
            if guard > 64 * spec.event_size {
                for a in 0..spec.dims as u32 {
                    if pairs.len() == spec.event_size {
                        break;
                    }
                    let attr = AttrId(a);
                    if pairs.iter().all(|&(x, _)| x != attr) {
                        let v = self
                            .samplers
                            .value(&mut self.rng, schema.domain(attr), self.phase);
                        pairs.push((attr, v));
                    }
                }
            }
        }
        Event::new(pairs).expect("event_size ≥ 1 and attrs distinct")
    }
}

impl Iterator for EventStream<'_> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        Some(self.next_event())
    }
}

/// Picks a value of `domain` satisfying `pred`, or a random in-domain value
/// if the predicate is unsatisfiable within the domain.
fn satisfying_value(rng: &mut StdRng, pred: &Predicate, domain: Domain) -> Value {
    let intervals = pred.op.satisfying_intervals(domain);
    if intervals.is_empty() {
        return rng.gen_range(domain.min()..=domain.max());
    }
    let (lo, hi) = intervals[rng.gen_range(0..intervals.len())];
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperatorMix;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let spec = WorkloadSpec::new(200).seed(5);
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.subs.len(), 200);
        assert_eq!(a.subs, b.subs);
        assert_eq!(a.schema.dims(), spec.dims);
    }

    #[test]
    fn subscriptions_respect_spec_bounds() {
        let wl = WorkloadSpec::new(300).sub_preds(2, 5).seed(1).build();
        for sub in &wl.subs {
            assert!((2..=5).contains(&sub.len()), "sub size {}", sub.len());
            sub.validate(&wl.schema).expect("generated subs validate");
            // One predicate per attribute.
            let mut attrs: Vec<_> = sub.predicates().iter().map(|p| p.attr).collect();
            attrs.dedup();
            assert_eq!(attrs.len(), sub.len());
        }
    }

    #[test]
    fn events_respect_spec_bounds() {
        let wl = WorkloadSpec::new(50).event_size(10).seed(2).build();
        for ev in wl.events(200) {
            assert_eq!(ev.len(), 10);
            for &(attr, v) in ev.pairs() {
                assert!(wl.schema.domain(attr).contains(v));
            }
        }
    }

    #[test]
    fn planted_events_match_something() {
        let wl = WorkloadSpec::new(100).planted_fraction(1.0).seed(3).build();
        for ev in wl.events(100) {
            let matched = wl.subs.iter().any(|s| s.matches(&ev));
            assert!(matched, "every planted event matches ≥ 1 subscription");
        }
    }

    #[test]
    fn zero_planting_is_mostly_misses() {
        // With 20 dims of cardinality 1000 and equality-heavy expressions,
        // random events essentially never match.
        let wl = WorkloadSpec::new(100).planted_fraction(0.0).seed(4).build();
        let hits: usize = wl
            .events(100)
            .iter()
            .map(|ev| wl.subs.iter().filter(|s| s.matches(ev)).count())
            .sum();
        // < 1% of the 10,000 (event, sub) pairs.
        assert!(hits < 100, "expected sparse matches, got {hits}");
    }

    #[test]
    fn streams_are_deterministic() {
        let wl = WorkloadSpec::new(20).seed(6).build();
        assert_eq!(wl.events(50), wl.events(50));
    }

    #[test]
    fn operator_mixes_generate() {
        for mix in [
            OperatorMix::balanced(),
            OperatorMix::equality_only(),
            OperatorMix::range_heavy(),
        ] {
            let wl = WorkloadSpec::new(100).operators(mix).seed(7).build();
            assert_eq!(wl.subs.len(), 100);
        }
    }

    #[test]
    fn equality_only_produces_only_eq() {
        let wl = WorkloadSpec::new(100)
            .operators(OperatorMix::equality_only())
            .seed(8)
            .build();
        for sub in &wl.subs {
            for p in sub.predicates() {
                assert!(matches!(p.op, Op::Eq(_)), "unexpected {:?}", p.op);
            }
        }
    }

    #[test]
    fn zipf_values_skew_event_values() {
        let wl = WorkloadSpec::new(1)
            .values(ValueDist::Zipf(1.2))
            .planted_fraction(0.0)
            .seed(9)
            .build();
        let events = wl.events(2000);
        let low = events
            .iter()
            .flat_map(|e| e.pairs())
            .filter(|&&(_, v)| v < 100)
            .count();
        let total = events.iter().map(|e| e.len()).sum::<usize>();
        assert!(
            low as f64 / total as f64 > 0.5,
            "Zipf should concentrate mass at low ranks: {low}/{total}"
        );
    }

    #[test]
    fn tiny_domain_and_dims_work() {
        let wl = WorkloadSpec::new(50)
            .dims(3)
            .cardinality(2)
            .sub_preds(1, 3)
            .event_size(3)
            .set_size(2)
            .seed(10)
            .build();
        assert_eq!(wl.subs.len(), 50);
        let _ = wl.events(50);
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn build_panics_on_invalid_spec() {
        let _ = WorkloadSpec::new(1).dims(0).build();
    }
}
