//! Drifting event streams for the adaptivity experiments.

use crate::{EventStream, Workload};
use apcm_bexpr::Event;

/// An event stream whose value distribution rotates over time.
///
/// Every `period` events the stream advances its *phase*: sampled value
/// ranks are shifted by `step` positions around the domain. Under a skewed
/// value distribution this moves the hot values — and therefore which
/// clusters of the compressed matcher run hot — which is precisely the
/// non-stationarity A-PCM's adaptive re-clustering is designed to track.
/// Under a uniform distribution the rotation is a no-op by symmetry.
pub struct DriftingStream<'a> {
    inner: EventStream<'a>,
    period: usize,
    step: u64,
    emitted: usize,
}

impl<'a> DriftingStream<'a> {
    /// Wraps a workload's stream; the phase advances by `step` value ranks
    /// every `period` events.
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn new(workload: &'a Workload, period: usize, step: u64, seed: u64) -> Self {
        assert!(period > 0, "drift period must be positive");
        Self {
            inner: EventStream::new(workload, seed),
            period,
            step,
            emitted: 0,
        }
    }

    /// Number of phase shifts performed so far.
    pub fn shifts(&self) -> usize {
        self.emitted / self.period
    }

    /// Generates the next event under the current phase.
    pub fn next_event(&mut self) -> Event {
        let ev = self.inner.next_event();
        self.emitted += 1;
        if self.emitted.is_multiple_of(self.period) {
            self.inner.phase = self.inner.phase.wrapping_add(self.step);
        }
        ev
    }
}

impl Iterator for DriftingStream<'_> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        Some(self.next_event())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ValueDist, WorkloadSpec};

    #[test]
    fn phase_advances_every_period() {
        let wl = WorkloadSpec::new(10).seed(1).build();
        let mut stream = DriftingStream::new(&wl, 5, 100, 7);
        for _ in 0..14 {
            let _ = stream.next_event();
        }
        assert_eq!(stream.shifts(), 2);
    }

    #[test]
    fn drift_moves_hot_values_under_skew() {
        let wl = WorkloadSpec::new(1)
            .values(ValueDist::Zipf(1.5))
            .planted_fraction(0.0)
            .seed(2)
            .build();
        // Phase 0: hot values near 0. After a large shift, hot values move.
        let mut stream = DriftingStream::new(&wl, 1000, 500, 3);
        let before: Vec<i64> = (&mut stream)
            .take(1000)
            .flat_map(|e| e.pairs().iter().map(|&(_, v)| v).collect::<Vec<_>>())
            .collect();
        let after: Vec<i64> = stream
            .take(1000)
            .flat_map(|e| e.pairs().iter().map(|&(_, v)| v).collect::<Vec<_>>())
            .collect();
        let low = |vs: &[i64]| vs.iter().filter(|&&v| v < 250).count() as f64 / vs.len() as f64;
        assert!(
            low(&before) > low(&after) + 0.3,
            "hot mass should move away from low values: {} vs {}",
            low(&before),
            low(&after)
        );
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let wl = WorkloadSpec::new(1).build();
        let _ = DriftingStream::new(&wl, 0, 1, 0);
    }

    #[test]
    fn deterministic() {
        let wl = WorkloadSpec::new(10).seed(5).build();
        let a: Vec<Event> = DriftingStream::new(&wl, 3, 17, 9).take(20).collect();
        let b: Vec<Event> = DriftingStream::new(&wl, 3, 17, 9).take(20).collect();
        assert_eq!(a, b);
    }
}
