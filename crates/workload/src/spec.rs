//! Workload parameters — one field per evaluation axis.

use serde::{Deserialize, Serialize};

/// Relative weights for each predicate operator in generated expressions.
///
/// Weights need not sum to anything in particular; they are normalized at
/// sampling time. A zero weight disables the operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatorMix {
    /// Weight of `=`.
    pub eq: f64,
    /// Weight of `!=`.
    pub ne: f64,
    /// Weight of `<` / `<=` (split evenly).
    pub lt: f64,
    /// Weight of `>` / `>=` (split evenly).
    pub gt: f64,
    /// Weight of `BETWEEN`.
    pub between: f64,
    /// Weight of `IN`.
    pub in_set: f64,
    /// Weight of `NOT IN`.
    pub not_in: f64,
}

impl OperatorMix {
    /// The default mix used across the evaluation: equality-heavy with a
    /// substantial range component, mirroring the BE-Tree experiments.
    pub fn balanced() -> Self {
        Self {
            eq: 0.40,
            ne: 0.03,
            lt: 0.07,
            gt: 0.07,
            between: 0.28,
            in_set: 0.12,
            not_in: 0.03,
        }
    }

    /// Equality-only workload (the easiest case for inverted-list baselines
    /// such as the k-index; used in the operator-mix ablation).
    pub fn equality_only() -> Self {
        Self {
            eq: 1.0,
            ne: 0.0,
            lt: 0.0,
            gt: 0.0,
            between: 0.0,
            in_set: 0.0,
            not_in: 0.0,
        }
    }

    /// Range-heavy workload (stresses the interval machinery).
    pub fn range_heavy() -> Self {
        Self {
            eq: 0.10,
            ne: 0.05,
            lt: 0.15,
            gt: 0.15,
            between: 0.45,
            in_set: 0.05,
            not_in: 0.05,
        }
    }

    pub(crate) fn total(&self) -> f64 {
        self.eq + self.ne + self.lt + self.gt + self.between + self.in_set + self.not_in
    }
}

impl Default for OperatorMix {
    fn default() -> Self {
        Self::balanced()
    }
}

/// Distribution of operand / event values over an attribute's domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValueDist {
    /// Every domain value equally likely.
    Uniform,
    /// Zipf-skewed with the given exponent; rank 0 maps to the domain
    /// minimum.
    Zipf(f64),
}

/// All generation parameters. Construct with [`WorkloadSpec::new`], adjust
/// with the fluent setters, and call [`WorkloadSpec::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of subscriptions (corpus size; the paper sweeps to 5M).
    pub n_subs: usize,
    /// Number of attributes (the dimensionality axis).
    pub dims: usize,
    /// Values per attribute domain (the cardinality axis).
    pub cardinality: u64,
    /// Inclusive range of predicates per subscription.
    pub sub_preds: (usize, usize),
    /// Attributes per event (the event-size axis); capped at `dims`.
    pub event_size: usize,
    /// Operator weights.
    pub operators: OperatorMix,
    /// Distribution of predicate operands and event values.
    pub values: ValueDist,
    /// Zipf exponent over *attribute popularity* (0 = uniform). Skewed
    /// attribute popularity concentrates predicates on few dimensions, which
    /// is what makes real corpora compressible.
    pub attr_skew: f64,
    /// Fraction of events planted to match a random subscription — the
    /// matching-probability axis.
    pub planted_fraction: f64,
    /// Width of `BETWEEN` ranges as a fraction of the domain.
    pub range_width: f64,
    /// Values per `IN` / `NOT IN` set.
    pub set_size: usize,
    /// RNG seed; same spec + same seed → identical workload and streams.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec with the evaluation's default shape: 20 dimensions of
    /// cardinality 1000, 3–7 predicates per expression, 15-attribute events,
    /// balanced operators, uniform values, 1% planted matches.
    pub fn new(n_subs: usize) -> Self {
        Self {
            n_subs,
            dims: 20,
            cardinality: 1000,
            sub_preds: (3, 7),
            event_size: 15,
            operators: OperatorMix::balanced(),
            values: ValueDist::Uniform,
            attr_skew: 0.6,
            planted_fraction: 0.01,
            range_width: 0.05,
            set_size: 4,
            seed: 42,
        }
    }

    /// Sets the dimensionality.
    pub fn dims(mut self, dims: usize) -> Self {
        self.dims = dims;
        self
    }

    /// Sets the domain cardinality.
    pub fn cardinality(mut self, cardinality: u64) -> Self {
        self.cardinality = cardinality;
        self
    }

    /// Sets the predicates-per-subscription range (inclusive).
    pub fn sub_preds(mut self, min: usize, max: usize) -> Self {
        self.sub_preds = (min, max);
        self
    }

    /// Sets the event size.
    pub fn event_size(mut self, n: usize) -> Self {
        self.event_size = n;
        self
    }

    /// Sets the operator mix.
    pub fn operators(mut self, mix: OperatorMix) -> Self {
        self.operators = mix;
        self
    }

    /// Sets the value distribution.
    pub fn values(mut self, dist: ValueDist) -> Self {
        self.values = dist;
        self
    }

    /// Sets the attribute-popularity skew.
    pub fn attr_skew(mut self, s: f64) -> Self {
        self.attr_skew = s;
        self
    }

    /// Sets the planted-match fraction.
    pub fn planted_fraction(mut self, f: f64) -> Self {
        self.planted_fraction = f;
        self
    }

    /// Sets the `BETWEEN` width fraction.
    pub fn range_width(mut self, w: f64) -> Self {
        self.range_width = w;
        self
    }

    /// Sets the `IN`-set size.
    pub fn set_size(mut self, n: usize) -> Self {
        self.set_size = n;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the spec; called by `build`, public for config loaders.
    pub fn validate(&self) -> Result<(), String> {
        if self.dims == 0 {
            return Err("dims must be positive".into());
        }
        if self.cardinality == 0 {
            return Err("cardinality must be positive".into());
        }
        if self.sub_preds.0 == 0 || self.sub_preds.0 > self.sub_preds.1 {
            return Err(format!("invalid sub_preds range {:?}", self.sub_preds));
        }
        if self.sub_preds.1 > self.dims {
            return Err("sub_preds.1 exceeds dims (one predicate per attribute)".into());
        }
        if self.event_size == 0 || self.event_size > self.dims {
            return Err(format!(
                "event_size {} must be in 1..=dims ({})",
                self.event_size, self.dims
            ));
        }
        if !(0.0..=1.0).contains(&self.planted_fraction) {
            return Err("planted_fraction must be in [0, 1]".into());
        }
        if self.operators.total() <= 0.0 {
            return Err("operator mix must have positive total weight".into());
        }
        if !(0.0..=1.0).contains(&self.range_width) {
            return Err("range_width must be in [0, 1]".into());
        }
        if self.set_size == 0 {
            return Err("set_size must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid() {
        assert_eq!(WorkloadSpec::new(10).validate(), Ok(()));
    }

    #[test]
    fn fluent_setters_apply() {
        let spec = WorkloadSpec::new(5)
            .dims(8)
            .cardinality(64)
            .sub_preds(2, 4)
            .event_size(6)
            .values(ValueDist::Zipf(1.2))
            .attr_skew(0.0)
            .planted_fraction(0.5)
            .range_width(0.2)
            .set_size(3)
            .seed(99);
        assert_eq!(spec.dims, 8);
        assert_eq!(spec.cardinality, 64);
        assert_eq!(spec.sub_preds, (2, 4));
        assert_eq!(spec.event_size, 6);
        assert_eq!(spec.values, ValueDist::Zipf(1.2));
        assert_eq!(spec.seed, 99);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(WorkloadSpec::new(1).dims(0).validate().is_err());
        assert!(WorkloadSpec::new(1).cardinality(0).validate().is_err());
        assert!(WorkloadSpec::new(1).sub_preds(0, 3).validate().is_err());
        assert!(WorkloadSpec::new(1).sub_preds(5, 3).validate().is_err());
        assert!(WorkloadSpec::new(1).sub_preds(3, 100).validate().is_err());
        assert!(WorkloadSpec::new(1).event_size(0).validate().is_err());
        assert!(WorkloadSpec::new(1).event_size(9999).validate().is_err());
        assert!(WorkloadSpec::new(1)
            .planted_fraction(1.5)
            .validate()
            .is_err());
        assert!(WorkloadSpec::new(1).set_size(0).validate().is_err());
        let zero_ops = OperatorMix {
            eq: 0.0,
            ne: 0.0,
            lt: 0.0,
            gt: 0.0,
            between: 0.0,
            in_set: 0.0,
            not_in: 0.0,
        };
        assert!(WorkloadSpec::new(1).operators(zero_ops).validate().is_err());
    }

    #[test]
    fn preset_mixes_have_positive_weight() {
        assert!(OperatorMix::balanced().total() > 0.0);
        assert!(OperatorMix::equality_only().total() > 0.0);
        assert!(OperatorMix::range_heavy().total() > 0.0);
    }
}
