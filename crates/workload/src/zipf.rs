//! Bounded Zipf sampler.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1 / (rank+1)^s`.
///
/// Uses a precomputed CDF with binary-search inversion: `O(n)` memory and
/// build, `O(log n)` per sample. Domain cardinalities in the evaluation stay
/// ≤ 100k, so the table is small; exactness and determinism matter more here
/// than the constant factor a rejection sampler would save.
///
/// `s = 0` degenerates to the uniform distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point drift: the last bucket must cover 1.0.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose cdf ≥ u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 100_000.0;
            assert!((p - 0.1).abs() < 0.01, "uniform bucket off: {p}");
        }
    }

    #[test]
    fn skewed_when_s_positive() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 0 of Zipf(1.0, n=100) has probability 1/H_100 ≈ 0.1928.
        let p0 = counts[0] as f64 / 100_000.0;
        assert!((p0 - 0.1928).abs() < 0.01, "rank-0 mass off: {p0}");
    }

    #[test]
    fn all_ranks_in_range() {
        let z = Zipf::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn singleton_support() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.n(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(50, 0.8);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
