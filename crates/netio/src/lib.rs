//! apcm-netio: a readiness-driven network event loop with zero external
//! dependencies.
//!
//! Three layers, bottom-up:
//!
//! - [`sys`] — a vendored epoll/eventfd/rlimit shim: raw `extern "C"`
//!   declarations against libc's stable ABI, each wrapped in an
//!   `io::Result` function. No crates.io dependency anywhere.
//! - [`poller`] — [`Poller`] (safe epoll registration + wait, level- or
//!   edge-triggered) and [`Waker`] (eventfd-backed cross-thread wake).
//! - [`event_loop`] — [`EventLoop`]: a fixed worker pool multiplexing
//!   accept, byte-capped line-framed reads, bounded buffered writes,
//!   and a hashed [`TimerWheel`] for idle reaping and maintenance.
//!   Protocol logic plugs in through the [`Service`] trait.
//!
//! The design goal is thousands of mostly-idle connections on a
//! handful of threads: memory per connection is one small struct plus
//! its buffers, and wakeups are O(active), not O(open).

pub mod event_loop;
pub mod poller;
pub mod sys;
pub mod wheel;

pub use event_loop::{
    default_workers, CloseReason, ConnId, EventLoop, Line, LoopHandle, LoopMetrics, LoopOptions,
    SendOutcome, Service, Verdict,
};
pub use poller::{Interest, Mode, PollEvent, Poller, Waker};
pub use wheel::TimerWheel;

#[cfg(test)]
mod loop_tests {
    use super::event_loop::*;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Line-echo service: replies `echo <line>`; `quit` closes after
    /// flushing `bye`; `toolong` lines get a marker reply.
    struct Echo {
        handle: Mutex<Option<Arc<LoopHandle>>>,
        closes: Mutex<Vec<(ConnId, CloseReason)>>,
        opens: AtomicU64,
    }

    impl Echo {
        fn new() -> Echo {
            Echo {
                handle: Mutex::new(None),
                closes: Mutex::new(Vec::new()),
                opens: AtomicU64::new(0),
            }
        }
        fn handle(&self) -> Arc<LoopHandle> {
            self.handle.lock().unwrap().clone().unwrap()
        }
    }

    impl Service for Echo {
        type Session = ();

        fn on_open(&self, _conn: ConnId, handle: &Arc<LoopHandle>) {
            self.opens.fetch_add(1, Ordering::Relaxed);
            let mut slot = self.handle.lock().unwrap();
            if slot.is_none() {
                *slot = Some(handle.clone());
            }
        }

        fn on_line(&self, _s: &mut (), conn: ConnId, line: Line<'_>) -> Verdict {
            match line {
                Line::Text("quit") => {
                    self.handle().send(conn, "bye".to_string());
                    Verdict::Close
                }
                Line::Text(text) => {
                    self.handle().send(conn, format!("echo {text}"));
                    Verdict::Continue
                }
                Line::TooLong => {
                    self.handle().send(conn, "-ERR line too long".to_string());
                    Verdict::Continue
                }
            }
        }

        fn on_close(&self, _s: &mut (), conn: ConnId, reason: CloseReason) {
            self.closes.lock().unwrap().push((conn, reason));
        }
    }

    fn start_echo(options: LoopOptions) -> (EventLoop, Arc<Echo>, std::net::SocketAddr) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let service = Arc::new(Echo::new());
        let el = EventLoop::start(listener, service.clone(), options).unwrap();
        (el, service, addr)
    }

    fn read_reply(reader: &mut BufReader<TcpStream>) -> String {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn echoes_lines_and_quits_with_flush() {
        let (el, service, addr) = start_echo(LoopOptions {
            workers: 2,
            ..LoopOptions::default()
        });
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"hello\nworld\n").unwrap();
        assert_eq!(read_reply(&mut reader), "echo hello");
        assert_eq!(read_reply(&mut reader), "echo world");
        writer.write_all(b"quit\n").unwrap();
        assert_eq!(read_reply(&mut reader), "bye");
        // Server closes after the drain: reads hit EOF.
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty());
        el.shutdown();
        let closes = service.closes.lock().unwrap();
        assert!(closes
            .iter()
            .any(|(_, reason)| *reason == CloseReason::Requested));
    }

    #[test]
    fn torn_lines_reassemble_across_dribbled_writes() {
        let (el, _service, addr) = start_echo(LoopOptions {
            workers: 2,
            ..LoopOptions::default()
        });
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Dribble one line byte by byte, then two lines in one write.
        for b in b"dribble" {
            writer.write_all(&[*b]).unwrap();
            writer.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        writer.write_all(b"\nsecond\nthird\n").unwrap();
        assert_eq!(read_reply(&mut reader), "echo dribble");
        assert_eq!(read_reply(&mut reader), "echo second");
        assert_eq!(read_reply(&mut reader), "echo third");
        el.shutdown();
    }

    #[test]
    fn oversized_line_reports_toolong_and_keeps_conn() {
        let (el, _service, addr) = start_echo(LoopOptions {
            workers: 2,
            max_line_bytes: 16,
            ..LoopOptions::default()
        });
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let big = vec![b'x'; 300];
        writer.write_all(&big).unwrap();
        writer.write_all(b"\nok\n").unwrap();
        assert_eq!(read_reply(&mut reader), "-ERR line too long");
        assert_eq!(read_reply(&mut reader), "echo ok");
        el.shutdown();
    }

    #[test]
    fn line_exactly_at_cap_is_accepted() {
        let (el, _service, addr) = start_echo(LoopOptions {
            workers: 2,
            max_line_bytes: 8,
            ..LoopOptions::default()
        });
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"12345678\n").unwrap();
        assert_eq!(read_reply(&mut reader), "echo 12345678");
        writer.write_all(b"123456789\n").unwrap();
        assert_eq!(read_reply(&mut reader), "-ERR line too long");
        el.shutdown();
    }

    #[test]
    fn admission_cap_rejects_with_line() {
        let (el, _service, addr) = start_echo(LoopOptions {
            workers: 2,
            max_conns: Some(2),
            reject_line: Some("-ERR server busy".to_string()),
            ..LoopOptions::default()
        });
        let keep1 = TcpStream::connect(addr).unwrap();
        let keep2 = TcpStream::connect(addr).unwrap();
        // Confirm both admitted (echo works) before the third dials in.
        for stream in [&keep1, &keep2] {
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut w = stream.try_clone().unwrap();
            w.write_all(b"ping\n").unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            assert_eq!(read_reply(&mut r), "echo ping");
        }
        let rejected = TcpStream::connect(addr).unwrap();
        rejected
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut r = BufReader::new(rejected);
        assert_eq!(read_reply(&mut r), "-ERR server busy");
        let mut rest = String::new();
        r.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert_eq!(
            el.handle().metrics().conns_rejected.load(Ordering::Relaxed),
            1
        );
        el.shutdown();
    }

    #[test]
    fn try_send_reports_full_at_cap_and_send_exceeds_it() {
        let (el, service, addr) = start_echo(LoopOptions {
            workers: 2,
            conn_queue: 4,
            ..LoopOptions::default()
        });
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(b"hello\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert_eq!(read_reply(&mut reader), "echo hello");
        let handle = service.handle();
        let conn = {
            // Only one connection exists; find its id via owner map.
            let mut id = None;
            for candidate in 1..10 {
                if handle.owner_of(candidate).is_some() {
                    id = Some(candidate);
                    break;
                }
            }
            id.unwrap()
        };
        // The peer is not reading; pump until Full appears. The loop
        // may drain some into the socket buffer first, so give it room.
        let mut saw_full = false;
        for i in 0..200_000 {
            match handle.try_send(conn, format!("spam {i} {}", "x".repeat(512))) {
                SendOutcome::Full => {
                    saw_full = true;
                    break;
                }
                SendOutcome::Sent => {}
                SendOutcome::Gone => break,
            }
        }
        assert!(saw_full, "bounded queue never reported Full");
        // Unbounded control send still lands.
        assert!(handle.send(conn, "control".to_string()));
        el.shutdown();
    }

    #[test]
    fn idle_timeout_reaps_quiet_connections() {
        let (el, service, addr) = start_echo(LoopOptions {
            workers: 2,
            idle_timeout: Some(Duration::from_millis(150)),
            ..LoopOptions::default()
        });
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(b"hi\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert_eq!(read_reply(&mut reader), "echo hi");
        // Go quiet; the wheel should reap us.
        let mut buf = String::new();
        let n = reader.read_line(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "expected server-side close, got {buf:?}");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if service
                .closes
                .lock()
                .unwrap()
                .iter()
                .any(|(_, r)| *r == CloseReason::Idle)
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "idle reap never fired"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(el.handle().metrics().idle_reaped.load(Ordering::Relaxed) >= 1);
        el.shutdown();
    }

    #[test]
    fn kick_closes_from_another_thread() {
        let (el, service, addr) = start_echo(LoopOptions {
            workers: 2,
            ..LoopOptions::default()
        });
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(b"hi\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert_eq!(read_reply(&mut reader), "echo hi");
        let handle = service.handle();
        let conn = (1..10).find(|c| handle.owner_of(*c).is_some()).unwrap();
        let h = handle.clone();
        std::thread::spawn(move || h.kick(conn)).join().unwrap();
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.connections_open() > 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(5));
        }
        el.shutdown();
    }

    #[test]
    fn many_idle_connections_on_fixed_pool() {
        let (el, _service, addr) = start_echo(LoopOptions {
            workers: 2,
            ..LoopOptions::default()
        });
        let mut conns = Vec::new();
        for _ in 0..200 {
            conns.push(TcpStream::connect(addr).unwrap());
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while el.handle().connections_open() < 200 {
            assert!(std::time::Instant::now() < deadline, "accepts stalled");
            std::thread::sleep(Duration::from_millis(10));
        }
        // All of them still work.
        let probe = &conns[137];
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut w = probe.try_clone().unwrap();
        w.write_all(b"alive\n").unwrap();
        let mut r = BufReader::new(probe.try_clone().unwrap());
        assert_eq!(read_reply(&mut r), "echo alive");
        el.shutdown();
    }

    #[test]
    fn shutdown_closes_everything_with_reason() {
        let (el, service, addr) = start_echo(LoopOptions {
            workers: 2,
            ..LoopOptions::default()
        });
        let _c1 = TcpStream::connect(addr).unwrap();
        let _c2 = TcpStream::connect(addr).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while el.handle().connections_open() < 2 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(5));
        }
        el.shutdown();
        let closes = service.closes.lock().unwrap();
        assert_eq!(
            closes
                .iter()
                .filter(|(_, r)| *r == CloseReason::Shutdown)
                .count(),
            2
        );
    }

    #[test]
    fn eof_delivers_final_unterminated_line() {
        let (el, _service, addr) = start_echo(LoopOptions {
            workers: 2,
            ..LoopOptions::default()
        });
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        writer.write_all(b"partial").unwrap();
        // Half-close the write side: server sees EOF with a partial line.
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        assert_eq!(read_reply(&mut reader), "echo partial");
        el.shutdown();
    }
}
