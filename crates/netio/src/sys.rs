//! Raw Linux syscall surface: epoll, eventfd, and rlimits via
//! `extern "C"` declarations against libc's stable ABI. No external
//! crates — this is the whole vendored shim the event loop runs on.
//!
//! Only the handful of entry points the loop needs are declared; every
//! raw call is wrapped in a function returning `io::Result` built from
//! `io::Error::last_os_error()`, so nothing above this module touches
//! errno or raw return codes.

use std::io;
use std::os::unix::io::RawFd;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const RLIMIT_NOFILE: i32 = 7;

/// Mirror of the kernel's `struct epoll_event`. On x86-64 the C
/// declaration carries `__attribute__((packed))` (12 bytes); other
/// architectures use natural alignment (16 bytes).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

pub fn epoll_create() -> io::Result<RawFd> {
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

pub fn epoll_control(epfd: RawFd, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // DEL ignores the event argument on modern kernels but requires a
    // non-null pointer on ancient ones; passing it always is harmless.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Waits for events; `timeout_ms < 0` blocks indefinitely. `EINTR` is
/// surfaced as zero events, not an error.
pub fn epoll_pwait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
    if n < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(n as usize)
}

pub fn eventfd_new() -> io::Result<RawFd> {
    let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Adds one to an eventfd counter. `EAGAIN` (counter saturated — a wake
/// is already pending) is success for our purposes.
pub fn eventfd_signal(fd: RawFd) {
    let one: u64 = 1;
    unsafe { write(fd, (&one as *const u64).cast(), 8) };
}

/// Drains an eventfd counter back to zero (nonblocking read).
pub fn eventfd_drain(fd: RawFd) {
    let mut buf = [0u8; 8];
    unsafe { read(fd, buf.as_mut_ptr(), 8) };
}

pub fn close_fd(fd: RawFd) {
    unsafe { close(fd) };
}

/// Raises the soft `RLIMIT_NOFILE` to the hard limit, best-effort, and
/// returns the resulting `(soft, hard)` pair. Never fails hard: in
/// containers that drop `CAP_SYS_RESOURCE` the hard limit is immovable,
/// so callers scale their fd budgets to whatever this reports.
pub fn raise_nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur < lim.max {
        let raised = Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            lim.cur = lim.max;
        }
    }
    Ok((lim.cur, lim.max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_layout_matches_kernel_abi() {
        let expected = if cfg!(target_arch = "x86_64") { 12 } else { 16 };
        assert_eq!(std::mem::size_of::<EpollEvent>(), expected);
    }

    #[test]
    fn eventfd_signals_and_drains() {
        let fd = eventfd_new().unwrap();
        eventfd_signal(fd);
        eventfd_signal(fd);
        eventfd_drain(fd);
        close_fd(fd);
    }

    #[test]
    fn nofile_limit_reports_sane_values() {
        let (soft, hard) = raise_nofile_limit().unwrap();
        assert!(soft > 0 && soft <= hard);
    }
}
