//! Safe wrapper over the epoll shim: registration with level- or
//! edge-triggered interest, a blocking wait, and an eventfd-backed
//! cross-thread [`Waker`].

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::sys;

/// Which readiness conditions a registration reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// Level-triggered (re-reports while the condition holds) vs
/// edge-triggered (reports each transition once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Level,
    Edge,
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// `EPOLLERR` — a pending socket error; reads surface it.
    pub error: bool,
    /// `EPOLLHUP`/`EPOLLRDHUP` — peer closed; reads return EOF.
    pub hangup: bool,
}

fn interest_bits(interest: Interest, mode: Mode) -> u32 {
    let mut bits = sys::EPOLLRDHUP;
    if interest.readable {
        bits |= sys::EPOLLIN;
    }
    if interest.writable {
        bits |= sys::EPOLLOUT;
    }
    if mode == Mode::Edge {
        bits |= sys::EPOLLET;
    }
    bits
}

/// An epoll instance. `Send + Sync`, but the intended shape is one
/// poller owned by one loop worker.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
        })
    }

    /// Registers `fd` under `token` (returned verbatim in events).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest, mode: Mode) -> io::Result<()> {
        sys::epoll_control(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            interest_bits(interest, mode),
            token,
        )
    }

    /// Replaces an existing registration's interest set.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest, mode: Mode) -> io::Result<()> {
        sys::epoll_control(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            interest_bits(interest, mode),
            token,
        )
    }

    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness or `timeout` (forever when `None`),
    /// appending decoded events to `out`. Returns how many arrived;
    /// `EINTR` and timeouts both come back as 0.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so sub-millisecond timeouts do not spin.
            Some(t) => t.as_nanos().div_ceil(1_000_000).clamp(0, i32::MAX as u128) as i32,
        };
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = sys::epoll_pwait(self.epfd, &mut buf, timeout_ms)?;
        for raw in buf.iter().take(n) {
            let bits = raw.events;
            let token = raw.data;
            out.push(PollEvent {
                token,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & sys::EPOLLERR != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// Cross-thread wake handle: any thread calls [`Waker::wake`], and the
/// worker polling the waker's fd observes a readable event. Backed by a
/// nonblocking eventfd, so wakes coalesce instead of queueing.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: sys::eventfd_new()?,
        })
    }

    /// The fd to register (readable, level-triggered) with a poller.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    pub fn wake(&self) {
        sys::eventfd_signal(self.fd);
    }

    /// Clears pending wakes; call when the waker's fd reports readable,
    /// or a level-triggered registration will spin.
    pub fn drain(&self) {
        sys::eventfd_drain(self.fd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

// The fds are plain integers; all operations on them are thread-safe
// syscalls.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn wait_times_out_empty() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn level_triggered_read_reports_until_drained() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(b.as_raw_fd(), 7, Interest::READ, Mode::Level)
            .unwrap();
        a.write_all(b"hi").unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Level-triggered: still readable until the bytes are consumed.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut buf = [0u8; 8];
        let mut b2 = &b;
        let _ = b2.read(&mut buf).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 7 && e.readable));
    }

    #[test]
    fn edge_triggered_read_reports_once_per_arrival() {
        let (mut a, b) = pair();
        let poller = Poller::new().unwrap();
        poller
            .add(b.as_raw_fd(), 9, Interest::READ, Mode::Edge)
            .unwrap();
        a.write_all(b"x").unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.readable));

        // Without consuming, the edge does not re-fire.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(60)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 9));
    }

    #[test]
    fn hangup_is_reported() {
        let (a, b) = pair();
        let poller = Poller::new().unwrap();
        poller
            .add(b.as_raw_fd(), 3, Interest::READ, Mode::Level)
            .unwrap();
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.hangup));
    }

    #[test]
    fn waker_wakes_across_threads_and_coalesces() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller
            .add(waker.fd(), 99, Interest::READ, Mode::Level)
            .unwrap();

        let w = waker.clone();
        let t = std::thread::spawn(move || {
            w.wake();
            w.wake();
            w.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        t.join().unwrap();

        waker.drain();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 99));
    }

    #[test]
    fn modify_switches_interest() {
        let (_a, b) = pair();
        let poller = Poller::new().unwrap();
        poller
            .add(b.as_raw_fd(), 5, Interest::READ, Mode::Level)
            .unwrap();
        // An idle socket is writable but we did not ask for it.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 5 && e.writable));

        poller
            .modify(b.as_raw_fd(), 5, Interest::BOTH, Mode::Level)
            .unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 5 && e.writable));

        poller.remove(b.as_raw_fd()).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
    }
}
