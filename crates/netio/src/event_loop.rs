//! The event loop: a fixed pool of worker threads multiplexing accept,
//! nonblocking byte-capped line-framed reads, and EPOLLOUT-driven
//! buffered writes over one [`Poller`] per worker.
//!
//! ## Ownership model
//!
//! Every accepted connection is pinned to one worker (`fd % workers`);
//! only that worker ever touches the socket. Other threads interact
//! through the shared [`LoopHandle`]: enqueue outbound lines
//! ([`LoopHandle::try_send`] / [`LoopHandle::send`]) or request a close
//! ([`LoopHandle::kick`]); both nudge the owning worker through its
//! eventfd [`Waker`] and a small inbox, so the socket itself needs no
//! cross-thread synchronization.
//!
//! ## Outbound queue and backpressure
//!
//! Each connection has a bounded outbound queue of lines. `try_send`
//! (async fan-out: EVENT/RESULT pushes) reports `Full` at the cap and
//! lets the caller apply its slow-consumer policy. `send` (control
//! replies) enqueues beyond the cap — a reply to a request the peer
//! actually sent must not be silently dropped — and the loop compensates
//! by pausing reads (disarming `EPOLLIN`) while a connection's queue
//! sits above a high watermark, which bounds control-reply growth by
//! stalling the requests that generate them.
//!
//! ## Timers
//!
//! A hashed [`TimerWheel`] per worker drives idle reaping (one slot
//! entry per connection, rescheduled from its last-activity timestamp
//! when the check fires early), drain deadlines for closing
//! connections, and — on worker 0 — the periodic service tick. No
//! per-connection timer threads exist anywhere.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::poller::{Interest, Mode, PollEvent, Poller, Waker};
use crate::wheel::TimerWheel;

pub type ConnId = u64;

const TOKEN_WAKER: u64 = u64::MAX;
const TOKEN_LISTENER: u64 = u64::MAX - 1;
const TOKEN_TICK: u64 = u64::MAX - 2;

/// How long a draining (service-closed) connection may take to flush
/// its tail before being cut off.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// One inbound protocol line, already framed and byte-capped.
pub enum Line<'a> {
    Text(&'a str),
    /// The line exceeded `max_line_bytes`; its bytes were discarded
    /// through the terminating newline.
    TooLong,
}

/// What the service wants done with the connection after a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Continue,
    /// Stop reading, flush queued replies, then close.
    Close,
}

/// Why a connection was closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// Peer closed or reset the stream.
    Eof,
    /// A read or write failed.
    Error,
    /// [`LoopHandle::kick`] was called on it.
    Kicked,
    /// Idle longer than the configured timeout.
    Idle,
    /// The service returned [`Verdict::Close`] and the tail flushed
    /// (or the drain deadline expired).
    Requested,
    /// The loop is shutting down.
    Shutdown,
}

/// The protocol logic plugged into the loop. One instance serves every
/// connection; per-connection state lives in the `Session`.
pub trait Service: Send + Sync + 'static {
    type Session: Send;

    /// A connection was accepted and registered.
    fn on_open(&self, conn: ConnId, handle: &Arc<LoopHandle>) -> Self::Session;

    /// One complete inbound line. Replies go through the handle
    /// (`send`); ordering within the connection is FIFO.
    fn on_line(&self, session: &mut Self::Session, conn: ConnId, line: Line<'_>) -> Verdict;

    /// The connection is gone (always called exactly once per open).
    fn on_close(&self, session: &mut Self::Session, conn: ConnId, reason: CloseReason);

    /// Periodic maintenance hook (worker 0, `tick_interval` cadence).
    fn on_tick(&self) {}
}

/// Outcome of a bounded enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    Sent,
    /// Queue at capacity — the caller's slow-consumer policy decides.
    Full,
    /// No such connection (closed or never existed).
    Gone,
}

pub struct LoopOptions {
    /// Worker threads (connections are pinned by fd hash). At least 1.
    pub workers: usize,
    /// Bounded outbound-queue capacity per connection (lines), enforced
    /// on [`LoopHandle::try_send`] only.
    pub conn_queue: usize,
    /// Byte cap for one inbound line; longer lines surface as
    /// [`Line::TooLong`].
    pub max_line_bytes: usize,
    /// Close connections with no inbound line for this long.
    pub idle_timeout: Option<Duration>,
    /// Admission cap on concurrently open connections; excess accepts
    /// are answered with `reject_line` and closed.
    pub max_conns: Option<usize>,
    /// Line written (newline appended) to a rejected connection.
    pub reject_line: Option<String>,
    /// Cadence of [`Service::on_tick`]; `None` disables it.
    pub tick_interval: Option<Duration>,
    /// Per-readiness read budget in bytes — a fairness bound so one
    /// firehose connection cannot monopolize its worker (the
    /// level-triggered registration re-reports leftovers).
    pub read_chunk: usize,
}

impl Default for LoopOptions {
    fn default() -> Self {
        LoopOptions {
            workers: default_workers(),
            conn_queue: 1024,
            max_line_bytes: 1024 * 1024,
            idle_timeout: None,
            max_conns: None,
            reject_line: None,
            tick_interval: None,
            read_chunk: 64 * 1024,
        }
    }
}

/// Default pool size: the core count clamped to `[2, 8]` — readiness
/// I/O is cheap, so a handful of workers serves tens of thousands of
/// connections, and two workers keep the pool honest even on one core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, 8)
}

/// Loop-wide counters, all monotonically written with relaxed ordering
/// (monitoring data, not synchronization).
#[derive(Default)]
pub struct LoopMetrics {
    /// Gauge: currently open (admitted) connections.
    pub connections_open: AtomicU64,
    /// Connections admitted over the loop's lifetime.
    pub conns_total: AtomicU64,
    /// Connections refused by the admission cap.
    pub conns_rejected: AtomicU64,
    /// `epoll_wait` returns that carried at least one event.
    pub epoll_wakeups: AtomicU64,
    /// Gauge: outbound lines queued across all connections.
    pub outbound_queued_lines: AtomicU64,
    /// Connections closed by idle reaping.
    pub idle_reaped: AtomicU64,
}

struct Outbound {
    queue: VecDeque<String>,
    /// Bytes of `queue[0]` (plus its trailing newline) already written.
    head_written: usize,
    /// Set once the connection is closed/kicked; sends return `Gone`.
    closed: bool,
}

/// The cross-thread face of one connection.
struct ConnShared {
    owner: usize,
    out: Mutex<Outbound>,
    /// Milliseconds since the loop epoch of the last inbound line.
    activity_ms: AtomicU64,
    /// Dedupes flush nudges: set by senders, cleared by the owner
    /// right before it flushes.
    flush_pending: AtomicBool,
}

enum Inject {
    /// A freshly accepted connection handed to its owning worker.
    Conn(TcpStream, ConnId),
    /// Cross-thread close request.
    Kick(ConnId),
    /// Outbound lines were queued; flush when convenient.
    Flush(ConnId),
}

struct WorkerShared {
    waker: Waker,
    inbox: Mutex<Vec<Inject>>,
}

/// Shared handle for interacting with the loop from any thread.
pub struct LoopHandle {
    workers: Vec<WorkerShared>,
    conns: Mutex<HashMap<ConnId, Arc<ConnShared>>>,
    metrics: LoopMetrics,
    conn_queue: usize,
    epoch: Instant,
    next_conn: AtomicU64,
    shutdown: AtomicBool,
}

impl LoopHandle {
    /// Bounded enqueue for asynchronous fan-out. Never blocks.
    pub fn try_send(&self, conn: ConnId, line: String) -> SendOutcome {
        let Some(shared) = self.conns.lock().unwrap().get(&conn).cloned() else {
            return SendOutcome::Gone;
        };
        {
            let mut out = shared.out.lock().unwrap();
            if out.closed {
                return SendOutcome::Gone;
            }
            if out.queue.len() >= self.conn_queue {
                return SendOutcome::Full;
            }
            out.queue.push_back(line);
        }
        self.metrics
            .outbound_queued_lines
            .fetch_add(1, Ordering::Relaxed);
        self.nudge(&shared, conn);
        SendOutcome::Sent
    }

    /// Control-reply enqueue: beyond-capacity, never dropped. The loop
    /// pauses the connection's reads while its queue is over the high
    /// watermark, so this stays bounded by inbound request volume.
    /// Returns `false` when the connection is gone.
    pub fn send(&self, conn: ConnId, line: String) -> bool {
        let Some(shared) = self.conns.lock().unwrap().get(&conn).cloned() else {
            return false;
        };
        {
            let mut out = shared.out.lock().unwrap();
            if out.closed {
                return false;
            }
            out.queue.push_back(line);
        }
        self.metrics
            .outbound_queued_lines
            .fetch_add(1, Ordering::Relaxed);
        self.nudge(&shared, conn);
        true
    }

    /// Requests an immediate close (no flush of pending output beyond
    /// what the socket takes). Idempotent; unknown ids are ignored.
    pub fn kick(&self, conn: ConnId) {
        let Some(shared) = self.conns.lock().unwrap().get(&conn).cloned() else {
            return;
        };
        shared.out.lock().unwrap().closed = true;
        let worker = &self.workers[shared.owner];
        worker.inbox.lock().unwrap().push(Inject::Kick(conn));
        worker.waker.wake();
    }

    pub fn metrics(&self) -> &LoopMetrics {
        &self.metrics
    }

    pub fn connections_open(&self) -> usize {
        self.metrics.connections_open.load(Ordering::Relaxed) as usize
    }

    /// Which worker owns `conn` (`None` when gone) — test/diagnostic.
    pub fn owner_of(&self, conn: ConnId) -> Option<usize> {
        self.conns.lock().unwrap().get(&conn).map(|s| s.owner)
    }

    fn nudge(&self, shared: &Arc<ConnShared>, conn: ConnId) {
        if !shared.flush_pending.swap(true, Ordering::AcqRel) {
            let worker = &self.workers[shared.owner];
            worker.inbox.lock().unwrap().push(Inject::Flush(conn));
            worker.waker.wake();
        }
    }
}

/// A running loop. [`EventLoop::shutdown`] (or drop) stops the workers
/// and closes every connection.
pub struct EventLoop {
    handle: Arc<LoopHandle>,
    workers: Vec<JoinHandle<()>>,
}

impl EventLoop {
    /// Takes ownership of a bound listener and starts the worker pool.
    /// Worker 0 multiplexes accept alongside its share of connections.
    pub fn start<S: Service>(
        listener: TcpListener,
        service: Arc<S>,
        options: LoopOptions,
    ) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let nworkers = options.workers.max(1);
        let mut workers_shared = Vec::with_capacity(nworkers);
        for _ in 0..nworkers {
            workers_shared.push(WorkerShared {
                waker: Waker::new()?,
                inbox: Mutex::new(Vec::new()),
            });
        }
        let handle = Arc::new(LoopHandle {
            workers: workers_shared,
            conns: Mutex::new(HashMap::new()),
            metrics: LoopMetrics::default(),
            conn_queue: options.conn_queue.max(1),
            epoch: Instant::now(),
            next_conn: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let options = Arc::new(options);
        let mut threads = Vec::with_capacity(nworkers);
        let mut listener = Some(listener);
        for index in 0..nworkers {
            let handle = handle.clone();
            let service = service.clone();
            let options = options.clone();
            let listener = if index == 0 { listener.take() } else { None };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("apcm-netio-{index}"))
                    .spawn(move || {
                        Worker {
                            index,
                            handle,
                            service,
                            options,
                            listener,
                        }
                        .run()
                    })
                    .map_err(io::Error::other)?,
            );
        }
        Ok(EventLoop {
            handle,
            workers: threads,
        })
    }

    pub fn handle(&self) -> Arc<LoopHandle> {
        self.handle.clone()
    }

    /// Stops the workers: every connection is closed (reason
    /// [`CloseReason::Shutdown`]) and the threads are joined.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.handle.shutdown.store(true, Ordering::SeqCst);
        for worker in &self.handle.workers {
            worker.waker.wake();
        }
        for thread in self.workers.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop();
        }
    }
}

/// Worker-local connection state; only the owning worker touches it.
struct ConnLocal<S: Service> {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    session: S::Session,
    /// Partial inbound line (no newline seen yet).
    buf: Vec<u8>,
    /// The partial line already blew the byte cap; discarding until its
    /// newline.
    overflowed: bool,
    interest: Interest,
    /// `Verdict::Close` received: reads stopped, flushing the tail.
    draining: bool,
    /// Reads disarmed while the outbound queue is over the watermark.
    paused: bool,
}

enum FlushResult {
    /// Queue drained (or made progress and armed EPOLLOUT).
    Ok,
    /// The socket failed; close the connection.
    Failed,
    /// Drained while draining: complete the requested close.
    Drained,
}

struct Worker<S: Service> {
    index: usize,
    handle: Arc<LoopHandle>,
    service: Arc<S>,
    options: Arc<LoopOptions>,
    listener: Option<TcpListener>,
}

impl<S: Service> Worker<S> {
    fn run(mut self) {
        let poller = match Poller::new() {
            Ok(p) => p,
            Err(_) => return,
        };
        let shared = &self.handle.workers[self.index];
        if poller
            .add(shared.waker.fd(), TOKEN_WAKER, Interest::READ, Mode::Level)
            .is_err()
        {
            return;
        }
        if let Some(listener) = &self.listener {
            if poller
                .add(
                    listener.as_raw_fd(),
                    TOKEN_LISTENER,
                    Interest::READ,
                    Mode::Level,
                )
                .is_err()
            {
                return;
            }
        }

        let mut conns: HashMap<ConnId, ConnLocal<S>> = HashMap::new();
        let mut wheel = TimerWheel::new(256, Duration::from_millis(50));
        if self.index == 0 {
            if let Some(interval) = self.options.tick_interval {
                wheel.schedule_after(TOKEN_TICK, interval);
            }
        }
        let mut events: Vec<PollEvent> = Vec::new();
        let mut fired: Vec<u64> = Vec::new();
        let mut scratch = vec![0u8; self.options.read_chunk.clamp(4096, 1 << 20)];

        loop {
            if self.handle.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let now = Instant::now();
            let timeout = match wheel.next_deadline() {
                Some(deadline) => deadline
                    .saturating_duration_since(now)
                    .min(Duration::from_millis(500)),
                None => Duration::from_millis(500),
            };
            events.clear();
            let n = match poller.wait(&mut events, Some(timeout)) {
                Ok(n) => n,
                Err(_) => break,
            };
            if n > 0 {
                self.handle
                    .metrics
                    .epoll_wakeups
                    .fetch_add(1, Ordering::Relaxed);
            }
            if self.handle.shutdown.load(Ordering::SeqCst) {
                break;
            }

            for &ev in events.iter() {
                match ev.token {
                    TOKEN_WAKER => self.handle.workers[self.index].waker.drain(),
                    TOKEN_LISTENER => self.accept_burst(&poller, &mut conns, &mut wheel),
                    id => self.conn_event(&poller, &mut conns, &mut wheel, id, ev, &mut scratch),
                }
            }

            // Cross-thread work: fresh connections, kicks, flush nudges.
            let injects =
                std::mem::take(&mut *self.handle.workers[self.index].inbox.lock().unwrap());
            for inject in injects {
                match inject {
                    Inject::Conn(stream, id) => {
                        self.install(&poller, &mut conns, &mut wheel, stream, id)
                    }
                    Inject::Kick(id) => {
                        self.close_conn(&poller, &mut conns, id, CloseReason::Kicked)
                    }
                    Inject::Flush(id) => {
                        if let Some(conn) = conns.get(&id) {
                            conn.shared.flush_pending.store(false, Ordering::Release);
                        }
                        self.flush_and_settle(&poller, &mut conns, id);
                    }
                }
            }

            // Timers: idle checks, drain deadlines, the maintenance tick.
            fired.clear();
            wheel.advance(Instant::now(), &mut fired);
            for token in std::mem::take(&mut fired) {
                if token == TOKEN_TICK {
                    self.service.on_tick();
                    if let Some(interval) = self.options.tick_interval {
                        wheel.schedule_after(TOKEN_TICK, interval);
                    }
                    continue;
                }
                self.timer_fired(&poller, &mut conns, &mut wheel, token);
            }
        }

        // Shutdown: close every connection this worker owns.
        let ids: Vec<ConnId> = conns.keys().copied().collect();
        for id in ids {
            self.close_conn(&poller, &mut conns, id, CloseReason::Shutdown);
        }
    }

    fn accept_burst(
        &mut self,
        poller: &Poller,
        conns: &mut HashMap<ConnId, ConnLocal<S>>,
        wheel: &mut TimerWheel,
    ) {
        let Some(listener) = &self.listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((mut stream, _peer)) => {
                    if let Some(max) = self.options.max_conns {
                        if self.handle.connections_open() >= max {
                            self.handle
                                .metrics
                                .conns_rejected
                                .fetch_add(1, Ordering::Relaxed);
                            if let Some(line) = &self.options.reject_line {
                                let _ = stream.write_all(line.as_bytes());
                                let _ = stream.write_all(b"\n");
                            }
                            continue; // dropped: closed
                        }
                    }
                    let id = self.handle.next_conn.fetch_add(1, Ordering::Relaxed);
                    let owner = stream.as_raw_fd() as usize % self.handle.workers.len();
                    let shared = Arc::new(ConnShared {
                        owner,
                        out: Mutex::new(Outbound {
                            queue: VecDeque::new(),
                            head_written: 0,
                            closed: false,
                        }),
                        activity_ms: AtomicU64::new(self.handle.epoch.elapsed().as_millis() as u64),
                        flush_pending: AtomicBool::new(false),
                    });
                    self.handle.conns.lock().unwrap().insert(id, shared);
                    self.handle
                        .metrics
                        .conns_total
                        .fetch_add(1, Ordering::Relaxed);
                    self.handle
                        .metrics
                        .connections_open
                        .fetch_add(1, Ordering::Relaxed);
                    if owner == self.index {
                        self.install(poller, conns, wheel, stream, id);
                    } else {
                        let worker = &self.handle.workers[owner];
                        worker.inbox.lock().unwrap().push(Inject::Conn(stream, id));
                        worker.waker.wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transient accept failure (EMFILE, aborted handshake):
                    // back off briefly; the level-triggered registration
                    // re-reports pending connections.
                    std::thread::sleep(Duration::from_millis(2));
                    break;
                }
            }
        }
    }

    fn install(
        &self,
        poller: &Poller,
        conns: &mut HashMap<ConnId, ConnLocal<S>>,
        wheel: &mut TimerWheel,
        stream: TcpStream,
        id: ConnId,
    ) {
        let Some(shared) = self.handle.conns.lock().unwrap().get(&id).cloned() else {
            return; // kicked before installation
        };
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        if poller
            .add(stream.as_raw_fd(), id, Interest::READ, Mode::Level)
            .is_err()
        {
            self.handle.conns.lock().unwrap().remove(&id);
            self.handle
                .metrics
                .connections_open
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let session = self.service.on_open(id, &self.handle);
        conns.insert(
            id,
            ConnLocal {
                stream,
                shared,
                session,
                buf: Vec::new(),
                overflowed: false,
                interest: Interest::READ,
                draining: false,
                paused: false,
            },
        );
        if let Some(timeout) = self.options.idle_timeout {
            wheel.schedule_after(id, timeout);
        }
    }

    fn conn_event(
        &self,
        poller: &Poller,
        conns: &mut HashMap<ConnId, ConnLocal<S>>,
        wheel: &mut TimerWheel,
        id: ConnId,
        ev: PollEvent,
        scratch: &mut [u8],
    ) {
        if !conns.contains_key(&id) {
            return; // closed earlier in this batch
        }
        if ev.writable {
            self.flush_and_settle(poller, conns, id);
        }
        if ev.readable || ev.error || ev.hangup {
            self.handle_readable(poller, conns, wheel, id, scratch);
        }
    }

    /// Reads up to the fairness budget, frames lines, and dispatches
    /// them to the service. Level-triggered registration re-reports any
    /// leftover bytes on the next poll.
    fn handle_readable(
        &self,
        poller: &Poller,
        conns: &mut HashMap<ConnId, ConnLocal<S>>,
        wheel: &mut TimerWheel,
        id: ConnId,
        scratch: &mut [u8],
    ) {
        let mut close: Option<CloseReason> = None;
        let mut start_drain = false;
        {
            let Some(conn) = conns.get_mut(&id) else {
                return;
            };
            if conn.draining || conn.paused {
                return;
            }
            let mut budget = self.options.read_chunk;
            'read: loop {
                match (&conn.stream).read(scratch) {
                    Ok(0) => {
                        // EOF: a final unterminated line is delivered,
                        // matching the blocking reader's semantics.
                        if conn.overflowed {
                            let _ = self.service.on_line(&mut conn.session, id, Line::TooLong);
                        } else if !conn.buf.is_empty() {
                            let text = String::from_utf8_lossy(&conn.buf).into_owned();
                            conn.buf.clear();
                            let _ = self
                                .service
                                .on_line(&mut conn.session, id, Line::Text(&text));
                        }
                        close = Some(CloseReason::Eof);
                        break 'read;
                    }
                    Ok(n) => {
                        let verdict = self.feed_chunk(conn, id, &scratch[..n]);
                        if verdict == Verdict::Close {
                            start_drain = true;
                            break 'read;
                        }
                        budget = budget.saturating_sub(n);
                        if budget == 0 {
                            break 'read;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break 'read,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = Some(CloseReason::Error);
                        break 'read;
                    }
                }
            }
        }
        if let Some(reason) = close {
            // Give queued replies one last best-effort push (the error
            // reply for a bad final line, for instance) before closing.
            if reason == CloseReason::Eof {
                let _ = self.flush(conns, id, poller);
            }
            self.close_conn(poller, conns, id, reason);
            return;
        }
        if start_drain {
            if let Some(conn) = conns.get_mut(&id) {
                conn.draining = true;
                wheel.schedule_after(id, DRAIN_DEADLINE);
            }
        }
        self.flush_and_settle(poller, conns, id);
    }

    /// Splits one read chunk into byte-capped lines and hands each to
    /// the service. Returns the first non-`Continue` verdict.
    fn feed_chunk(&self, conn: &mut ConnLocal<S>, id: ConnId, chunk: &[u8]) -> Verdict {
        let max = self.options.max_line_bytes;
        let mut rest = chunk;
        loop {
            match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let verdict;
                    if conn.overflowed || conn.buf.len() + pos > max {
                        conn.overflowed = false;
                        conn.buf.clear();
                        verdict = self.service.on_line(&mut conn.session, id, Line::TooLong);
                    } else {
                        conn.buf.extend_from_slice(&rest[..pos]);
                        let text = String::from_utf8_lossy(&conn.buf).into_owned();
                        conn.buf.clear();
                        verdict = self
                            .service
                            .on_line(&mut conn.session, id, Line::Text(&text));
                    }
                    conn.shared.activity_ms.store(
                        self.handle.epoch.elapsed().as_millis() as u64,
                        Ordering::Relaxed,
                    );
                    rest = &rest[pos + 1..];
                    if verdict != Verdict::Continue {
                        return verdict;
                    }
                }
                None => {
                    if conn.overflowed || conn.buf.len() + rest.len() > max {
                        conn.overflowed = true;
                        conn.buf.clear();
                    } else {
                        conn.buf.extend_from_slice(rest);
                    }
                    return Verdict::Continue;
                }
            }
        }
    }

    /// Flushes, then applies the consequences (close on failure or
    /// drain completion) and settles interest/pause state.
    fn flush_and_settle(
        &self,
        poller: &Poller,
        conns: &mut HashMap<ConnId, ConnLocal<S>>,
        id: ConnId,
    ) {
        match self.flush(conns, id, poller) {
            FlushResult::Ok => {}
            FlushResult::Failed => self.close_conn(poller, conns, id, CloseReason::Error),
            FlushResult::Drained => self.close_conn(poller, conns, id, CloseReason::Requested),
        }
    }

    /// Writes queued lines until the queue empties or the socket would
    /// block; arms/disarms `EPOLLOUT` and the read-pause watermark.
    fn flush(
        &self,
        conns: &mut HashMap<ConnId, ConnLocal<S>>,
        id: ConnId,
        poller: &Poller,
    ) -> FlushResult {
        let Some(conn) = conns.get_mut(&id) else {
            return FlushResult::Ok;
        };
        let mut blocked = false;
        let mut failed = false;
        let mut popped = 0u64;
        {
            let mut out = conn.shared.out.lock().unwrap();
            'queue: while let Some(front) = out.queue.front() {
                let bytes_len = front.len();
                let total = bytes_len + 1; // trailing newline
                while out.head_written < total {
                    let written = out.head_written;
                    let front = out.queue.front().expect("checked above");
                    let result = if written < bytes_len {
                        (&conn.stream).write(&front.as_bytes()[written..])
                    } else {
                        (&conn.stream).write(b"\n")
                    };
                    match result {
                        Ok(0) => {
                            failed = true;
                            break 'queue;
                        }
                        Ok(n) => out.head_written += n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            blocked = true;
                            break 'queue;
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            failed = true;
                            break 'queue;
                        }
                    }
                }
                if out.head_written >= total {
                    out.queue.pop_front();
                    out.head_written = 0;
                    popped += 1;
                }
            }
        }
        if popped > 0 {
            self.handle
                .metrics
                .outbound_queued_lines
                .fetch_sub(popped, Ordering::Relaxed);
        }
        if failed {
            return FlushResult::Failed;
        }

        let pending = {
            let out = conn.shared.out.lock().unwrap();
            out.queue.len()
        };
        if pending == 0 && conn.draining {
            return FlushResult::Drained;
        }

        // Read-pause watermarks: stop reading while the outbound queue
        // is above capacity (control replies piled up), resume once it
        // drains below half.
        let high = self.handle.conn_queue;
        let low = (high / 2).max(1);
        if !conn.paused && pending > high {
            conn.paused = true;
        } else if conn.paused && pending < low {
            conn.paused = false;
        }

        let want = Interest {
            readable: !conn.draining && !conn.paused,
            writable: blocked || pending > 0,
        };
        if want != conn.interest
            && poller
                .modify(conn.stream.as_raw_fd(), id, want, Mode::Level)
                .is_ok()
        {
            conn.interest = want;
        }
        FlushResult::Ok
    }

    /// Idle-check / drain-deadline timer for one connection.
    fn timer_fired(
        &self,
        poller: &Poller,
        conns: &mut HashMap<ConnId, ConnLocal<S>>,
        wheel: &mut TimerWheel,
        id: ConnId,
    ) {
        let Some(conn) = conns.get(&id) else {
            return;
        };
        if conn.draining {
            // Drain deadline: the peer never took the tail.
            self.close_conn(poller, conns, id, CloseReason::Requested);
            return;
        }
        let Some(timeout) = self.options.idle_timeout else {
            return;
        };
        let now_ms = self.handle.epoch.elapsed().as_millis() as u64;
        let activity = conn.shared.activity_ms.load(Ordering::Relaxed);
        let idle = now_ms.saturating_sub(activity);
        let limit = timeout.as_millis() as u64;
        if idle > limit {
            self.handle
                .metrics
                .idle_reaped
                .fetch_add(1, Ordering::Relaxed);
            self.close_conn(poller, conns, id, CloseReason::Idle);
        } else {
            // Activity since the last check: re-arm from its timestamp.
            wheel.schedule_after(id, timeout.saturating_sub(Duration::from_millis(idle)));
        }
    }

    fn close_conn(
        &self,
        poller: &Poller,
        conns: &mut HashMap<ConnId, ConnLocal<S>>,
        id: ConnId,
        reason: CloseReason,
    ) {
        let Some(mut conn) = conns.remove(&id) else {
            return;
        };
        let _ = poller.remove(conn.stream.as_raw_fd());
        self.handle.conns.lock().unwrap().remove(&id);
        let dropped = {
            let mut out = conn.shared.out.lock().unwrap();
            out.closed = true;
            let n = out.queue.len() as u64;
            out.queue.clear();
            n
        };
        if dropped > 0 {
            self.handle
                .metrics
                .outbound_queued_lines
                .fetch_sub(dropped, Ordering::Relaxed);
        }
        self.handle
            .metrics
            .connections_open
            .fetch_sub(1, Ordering::Relaxed);
        self.service.on_close(&mut conn.session, id, reason);
        // Dropping the stream closes the fd.
    }
}
