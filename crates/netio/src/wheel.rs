//! Hashed timer wheel: O(1) schedule, O(slot) expiry sweep, and no
//! per-timer allocation or per-connection timer thread. Deadlines are
//! quantized to a fixed granularity and hashed into `tick % slots`; a
//! slot may hold entries for future laps, which the sweep skips and
//! leaves in place.
//!
//! The loop uses it two ways: one entry per connection for idle-reap
//! checks (rescheduled from the connection's last-activity timestamp
//! when it fires early), and a single recurring entry for the
//! periodic-maintenance tick.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    tick: u64,
}

pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    granularity: Duration,
    epoch: Instant,
    /// First tick not yet swept.
    cursor: u64,
    len: usize,
}

impl TimerWheel {
    /// `slots` spreads entries (more slots, shorter sweeps);
    /// `granularity` is the timing resolution — deadlines fire at the
    /// first sweep at or after the quantized deadline.
    pub fn new(slots: usize, granularity: Duration) -> TimerWheel {
        let slots = slots.max(1);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity: granularity.max(Duration::from_millis(1)),
            epoch: Instant::now(),
            cursor: 1,
            len: 0,
        }
    }

    fn tick_of(&self, deadline: Instant) -> u64 {
        let elapsed = deadline.saturating_duration_since(self.epoch);
        let tick = elapsed.as_nanos().div_ceil(self.granularity.as_nanos()) as u64;
        // Never schedule into the already-swept past, or the entry
        // would wait a full lap before its slot is visited again.
        tick.max(self.cursor)
    }

    pub fn schedule_at(&mut self, token: u64, deadline: Instant) {
        let tick = self.tick_of(deadline);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { token, tick });
        self.len += 1;
    }

    pub fn schedule_after(&mut self, token: u64, delay: Duration) {
        self.schedule_at(token, Instant::now() + delay);
    }

    /// Sweeps every tick up to `now`, appending expired tokens to
    /// `fired` (in no particular order). Entries for future laps stay.
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<u64>) {
        let now_tick = (now.saturating_duration_since(self.epoch).as_nanos()
            / self.granularity.as_nanos()) as u64;
        if now_tick < self.cursor {
            return;
        }
        let nslots = self.slots.len() as u64;
        // Visiting more ticks than there are slots revisits slots; one
        // full lap covers everything due.
        let first = if now_tick - self.cursor >= nslots {
            now_tick - nslots + 1
        } else {
            self.cursor
        };
        for tick in first..=now_tick {
            let slot = (tick % nslots) as usize;
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].tick <= now_tick {
                    fired.push(entries.swap_remove(i).token);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = now_tick + 1;
    }

    /// Earliest instant anything could fire — the poll-timeout hint.
    /// Conservative (the next unswept tick), never later than the true
    /// earliest deadline.
    pub fn next_deadline(&self) -> Option<Instant> {
        if self.len == 0 {
            return None;
        }
        let nanos = self.granularity.as_nanos() as u64 * self.cursor;
        Some(self.epoch + Duration::from_nanos(nanos))
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_or_after_deadline_not_before() {
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10));
        let now = Instant::now();
        wheel.schedule_at(1, now + Duration::from_millis(35));
        wheel.schedule_at(2, now + Duration::from_millis(5));

        let mut fired = Vec::new();
        wheel.advance(now, &mut fired);
        assert!(fired.is_empty());

        wheel.advance(now + Duration::from_millis(20), &mut fired);
        assert_eq!(fired, vec![2]);

        fired.clear();
        wheel.advance(now + Duration::from_millis(60), &mut fired);
        assert_eq!(fired, vec![1]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn colliding_slots_keep_future_laps() {
        // 4 slots, 10ms granularity: ticks 2 and 6 share slot 2.
        let mut wheel = TimerWheel::new(4, Duration::from_millis(10));
        let now = Instant::now();
        wheel.schedule_at(10, now + Duration::from_millis(15));
        wheel.schedule_at(60, now + Duration::from_millis(55));
        assert_eq!(wheel.len(), 2);

        let mut fired = Vec::new();
        wheel.advance(now + Duration::from_millis(25), &mut fired);
        assert_eq!(fired, vec![10]);
        assert_eq!(wheel.len(), 1);

        fired.clear();
        wheel.advance(now + Duration::from_millis(70), &mut fired);
        assert_eq!(fired, vec![60]);
    }

    #[test]
    fn long_idle_gap_sweeps_one_lap_only() {
        let mut wheel = TimerWheel::new(4, Duration::from_millis(1));
        let now = Instant::now();
        for t in 0..12u64 {
            wheel.schedule_at(t, now + Duration::from_millis(t * 3));
        }
        // Jump far past everything in one advance.
        let mut fired = Vec::new();
        wheel.advance(now + Duration::from_secs(10), &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, (0..12).collect::<Vec<_>>());
        assert!(wheel.is_empty());
    }

    #[test]
    fn next_deadline_tracks_cursor() {
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10));
        assert!(wheel.next_deadline().is_none());
        wheel.schedule_after(1, Duration::from_millis(50));
        let hint = wheel.next_deadline().unwrap();
        assert!(hint <= Instant::now() + Duration::from_millis(60));
    }

    #[test]
    fn reschedule_pattern_for_idle_checks() {
        // The loop's idle pattern: fire, notice activity, re-arm.
        let mut wheel = TimerWheel::new(16, Duration::from_millis(5));
        let now = Instant::now();
        wheel.schedule_at(42, now + Duration::from_millis(10));
        let mut fired = Vec::new();
        // Deadlines may fire up to one granularity late (quantization).
        wheel.advance(now + Duration::from_millis(17), &mut fired);
        assert_eq!(fired, vec![42]);
        // Re-arm relative to fresh activity.
        wheel.schedule_at(42, now + Duration::from_millis(30));
        fired.clear();
        wheel.advance(now + Duration::from_millis(20), &mut fired);
        assert!(fired.is_empty());
        wheel.advance(now + Duration::from_millis(40), &mut fired);
        assert_eq!(fired, vec![42]);
    }
}
