//! Structural statistics for the build/maintenance experiments.

use crate::BeTree;

/// A snapshot of the tree's shape, reported by the harness build table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeTreeStats {
    /// Number of c-nodes (buckets) in the arena.
    pub cnodes: usize,
    /// Number of p-nodes (partition directories).
    pub pnodes: usize,
    /// Number of c-directory clusters.
    pub clusters: usize,
    /// Expressions held across all buckets (equals the tree's `len`).
    pub resident: usize,
    /// Largest single bucket.
    pub max_bucket: usize,
    /// Expressions stranded in the root bucket (no directory attribute).
    pub root_residual: usize,
}

impl BeTree {
    /// Collects structural statistics.
    pub fn stats(&self) -> BeTreeStats {
        let (cnodes, pnodes, clusters) = self.arena_sizes();
        let mut resident = 0;
        let mut max_bucket = 0;
        for size in self.bucket_sizes() {
            resident += size;
            max_bucket = max_bucket.max(size);
        }
        BeTreeStats {
            cnodes,
            pnodes,
            clusters,
            resident,
            max_bucket,
            root_residual: self.root_bucket_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BeTreeConfig;
    use apcm_bexpr::Matcher;
    use apcm_workload::WorkloadSpec;

    #[test]
    fn stats_account_for_every_expression() {
        let wl = WorkloadSpec::new(1000).seed(41).build();
        let tree = BeTree::build_with_config(
            &wl.schema,
            &wl.subs,
            BeTreeConfig {
                max_bucket: 8,
                max_cdir_depth: 8,
            },
        )
        .unwrap();
        let stats = tree.stats();
        assert_eq!(stats.resident, tree.len());
        assert!(
            stats.cnodes >= stats.clusters,
            "every cluster owns a c-node"
        );
        assert!(stats.max_bucket >= 1);
    }

    #[test]
    fn empty_tree_stats() {
        let schema = apcm_bexpr::Schema::uniform(2, 10);
        let tree = BeTree::new(&schema);
        let stats = tree.stats();
        assert_eq!(stats.resident, 0);
        assert_eq!(stats.cnodes, 1, "just the root");
        assert_eq!(stats.pnodes, 0);
    }
}
