//! The BE-Tree structure: insertion, matching, deletion.

use apcm_bexpr::{
    AttrId, BexprError, Event, Matcher, Predicate, Schema, SubId, Subscription, Value,
};

/// Tuning knobs. Defaults follow the ranges explored in the BE-Tree papers.
#[derive(Debug, Clone, Copy)]
pub struct BeTreeConfig {
    /// A c-node bucket splits once it exceeds this many expressions (and a
    /// usable partitioning attribute exists).
    pub max_bucket: usize,
    /// Maximum halving depth of a c-directory; bounds per-attribute search
    /// cost to `O(max_cdir_depth)` clusters.
    pub max_cdir_depth: usize,
}

impl Default for BeTreeConfig {
    fn default() -> Self {
        Self {
            max_bucket: 32,
            max_cdir_depth: 12,
        }
    }
}

/// Index ids into the tree's arenas. `u32` keeps nodes compact.
type CNodeId = u32;
type PNodeId = u32;
type ClusterId = u32;

#[derive(Debug, Default)]
struct CNode {
    /// Expressions resident here: either not yet split out, or lacking every
    /// directory attribute of the p-node below.
    bucket: Vec<Subscription>,
    pnode: Option<PNodeId>,
}

#[derive(Debug)]
struct PNode {
    entries: Vec<PEntry>,
}

#[derive(Debug)]
struct PEntry {
    attr: AttrId,
    root_cluster: ClusterId,
}

#[derive(Debug)]
struct Cluster {
    lo: Value,
    hi: Value,
    depth: usize,
    left: Option<ClusterId>,
    right: Option<ClusterId>,
    cnode: CNodeId,
}

/// The BE-Tree. See the crate docs for the structure overview.
#[derive(Debug)]
pub struct BeTree {
    schema: Schema,
    config: BeTreeConfig,
    cnodes: Vec<CNode>,
    pnodes: Vec<PNode>,
    clusters: Vec<Cluster>,
    root: CNodeId,
    len: usize,
}

impl BeTree {
    /// An empty tree over `schema` with default tuning.
    pub fn new(schema: &Schema) -> Self {
        Self::with_config(schema, BeTreeConfig::default())
    }

    /// An empty tree with explicit tuning.
    ///
    /// # Panics
    /// Panics if `max_bucket == 0`.
    pub fn with_config(schema: &Schema, config: BeTreeConfig) -> Self {
        assert!(config.max_bucket > 0, "max_bucket must be positive");
        let mut tree = Self {
            schema: schema.clone(),
            config,
            cnodes: Vec::new(),
            pnodes: Vec::new(),
            clusters: Vec::new(),
            root: 0,
            len: 0,
        };
        tree.root = tree.alloc_cnode();
        tree
    }

    /// Bulk-builds a tree from a corpus.
    pub fn build(schema: &Schema, subs: &[Subscription]) -> Result<Self, BexprError> {
        Self::build_with_config(schema, subs, BeTreeConfig::default())
    }

    /// Bulk-builds with explicit tuning.
    pub fn build_with_config(
        schema: &Schema,
        subs: &[Subscription],
        config: BeTreeConfig,
    ) -> Result<Self, BexprError> {
        let mut tree = Self::with_config(schema, config);
        for sub in subs {
            tree.insert(sub.clone())?;
        }
        Ok(tree)
    }

    fn alloc_cnode(&mut self) -> CNodeId {
        self.cnodes.push(CNode::default());
        (self.cnodes.len() - 1) as CNodeId
    }

    fn alloc_cluster(&mut self, lo: Value, hi: Value, depth: usize) -> ClusterId {
        let cnode = self.alloc_cnode();
        self.clusters.push(Cluster {
            lo,
            hi,
            depth,
            left: None,
            right: None,
            cnode,
        });
        (self.clusters.len() - 1) as ClusterId
    }

    /// Inserts one expression, validating it against the schema.
    pub fn insert(&mut self, sub: Subscription) -> Result<(), BexprError> {
        sub.validate(&self.schema)?;
        let mut used = vec![false; self.schema.dims()];
        self.insert_into(self.root, sub, &mut used);
        self.len += 1;
        Ok(())
    }

    /// The enclosing satisfaction interval of `pred` within its attribute's
    /// domain, or `None` when the predicate is unsatisfiable there.
    fn enclosing_interval(&self, pred: &Predicate) -> Option<(Value, Value)> {
        let domain = self.schema.domain(pred.attr);
        let ivs = pred.op.satisfying_intervals(domain);
        match (ivs.first(), ivs.last()) {
            (Some(&(lo, _)), Some(&(_, hi))) => Some((lo, hi)),
            _ => None,
        }
    }

    fn insert_into(&mut self, cnode: CNodeId, sub: Subscription, used: &mut [bool]) {
        // Phase 1: route through the partition directory if one exists and
        // the expression carries a directory attribute not yet used on this
        // path.
        if let Some(pnode) = self.cnodes[cnode as usize].pnode {
            let n_entries = self.pnodes[pnode as usize].entries.len();
            for e in 0..n_entries {
                let entry_attr = self.pnodes[pnode as usize].entries[e].attr;
                if used[entry_attr.index()] {
                    continue;
                }
                let pred = sub.predicates().iter().find(|p| p.attr == entry_attr);
                if let Some(pred) = pred {
                    if let Some(interval) = self.enclosing_interval(pred) {
                        let root = self.pnodes[pnode as usize].entries[e].root_cluster;
                        let cluster = self.descend_cluster(root, interval);
                        let target = self.clusters[cluster as usize].cnode;
                        used[entry_attr.index()] = true;
                        self.insert_into(target, sub, used);
                        used[entry_attr.index()] = false;
                        return;
                    }
                }
            }
        }
        // Phase 2: no directory route — the expression lives in this bucket.
        self.cnodes[cnode as usize].bucket.push(sub);
        self.maybe_split(cnode, used);
    }

    /// Finds (creating lazily) the smallest cluster under `root` whose range
    /// fully contains `interval`, bounded by the depth limit.
    fn descend_cluster(&mut self, root: ClusterId, interval: (Value, Value)) -> ClusterId {
        let mut cur = root;
        loop {
            let Cluster { lo, hi, depth, .. } = self.clusters[cur as usize];
            if depth >= self.config.max_cdir_depth || lo == hi {
                return cur;
            }
            let mid = lo + (hi - lo) / 2;
            if interval.1 <= mid {
                if self.clusters[cur as usize].left.is_none() {
                    let child = self.alloc_cluster(lo, mid, depth + 1);
                    self.clusters[cur as usize].left = Some(child);
                }
                cur = self.clusters[cur as usize].left.expect("just created");
            } else if interval.0 > mid {
                if self.clusters[cur as usize].right.is_none() {
                    let child = self.alloc_cluster(mid + 1, hi, depth + 1);
                    self.clusters[cur as usize].right = Some(child);
                }
                cur = self.clusters[cur as usize].right.expect("just created");
            } else {
                // Straddles the midpoint: this is the smallest container.
                return cur;
            }
        }
    }

    /// Splits an overflowing bucket by adding a partition entry for the best
    /// unused attribute, then re-routes the bucket's expressions through it.
    fn maybe_split(&mut self, cnode: CNodeId, used: &mut [bool]) {
        if self.cnodes[cnode as usize].bucket.len() <= self.config.max_bucket {
            return;
        }
        let Some(attr) = self.best_split_attr(cnode, used) else {
            // Unsplittable bucket (every attribute already used on the path,
            // or no attribute appears more than once): overflow in place.
            return;
        };

        let pnode = match self.cnodes[cnode as usize].pnode {
            Some(p) => p,
            None => {
                self.pnodes.push(PNode {
                    entries: Vec::new(),
                });
                let p = (self.pnodes.len() - 1) as PNodeId;
                self.cnodes[cnode as usize].pnode = Some(p);
                p
            }
        };
        let domain = self.schema.domain(attr);
        let root_cluster = self.alloc_cluster(domain.min(), domain.max(), 0);
        self.pnodes[pnode as usize]
            .entries
            .push(PEntry { attr, root_cluster });

        // Re-route every bucket expression that carries the new attribute.
        let bucket = std::mem::take(&mut self.cnodes[cnode as usize].bucket);
        let (moved, kept): (Vec<_>, Vec<_>) = bucket.into_iter().partition(|s| {
            s.predicates()
                .iter()
                .any(|p| p.attr == attr && self.enclosing_interval(p).is_some())
        });
        self.cnodes[cnode as usize].bucket = kept;
        used[attr.index()] = true;
        for sub in moved {
            let pred = sub
                .predicates()
                .iter()
                .find(|p| p.attr == attr)
                .expect("partitioned by presence");
            let interval = self.enclosing_interval(pred).expect("checked in partition");
            let cluster = self.descend_cluster(root_cluster, interval);
            let target = self.clusters[cluster as usize].cnode;
            self.insert_into(target, sub, used);
        }
        used[attr.index()] = false;
    }

    /// Picks the unused attribute present in the most bucket expressions
    /// (ties: lower average selectivity → tighter clustering).
    fn best_split_attr(&self, cnode: CNodeId, used: &[bool]) -> Option<AttrId> {
        let bucket = &self.cnodes[cnode as usize].bucket;
        let dims = self.schema.dims();
        let mut count = vec![0u32; dims];
        let mut sel_sum = vec![0.0f64; dims];
        for sub in bucket {
            for pred in sub.predicates() {
                let a = pred.attr.index();
                if !used[a] {
                    count[a] += 1;
                    sel_sum[a] += pred.op.selectivity(self.schema.domain(pred.attr));
                }
            }
        }
        let best = (0..dims).filter(|&a| count[a] >= 2).max_by(|&a, &b| {
            count[a].cmp(&count[b]).then_with(|| {
                // Lower mean selectivity wins the tie.
                let ma = sel_sum[a] / count[a] as f64;
                let mb = sel_sum[b] / count[b] as f64;
                mb.partial_cmp(&ma).unwrap_or(std::cmp::Ordering::Equal)
            })
        })?;
        Some(AttrId::from_index(best))
    }

    /// Removes the expression with `sub`'s id and predicates; returns
    /// whether it was found. The expression's predicates guide the search to
    /// every bucket it could inhabit.
    pub fn remove(&mut self, sub: &Subscription) -> bool {
        let removed = self.remove_from(self.root, sub, &mut vec![false; self.schema.dims()]);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_from(&mut self, cnode: CNodeId, sub: &Subscription, used: &mut [bool]) -> bool {
        if let Some(pos) = self.cnodes[cnode as usize]
            .bucket
            .iter()
            .position(|s| s.id() == sub.id() && s == sub)
        {
            self.cnodes[cnode as usize].bucket.swap_remove(pos);
            return true;
        }
        let Some(pnode) = self.cnodes[cnode as usize].pnode else {
            return false;
        };
        let n_entries = self.pnodes[pnode as usize].entries.len();
        for e in 0..n_entries {
            let entry_attr = self.pnodes[pnode as usize].entries[e].attr;
            if used[entry_attr.index()] {
                continue;
            }
            let Some(pred) = sub.predicates().iter().find(|p| p.attr == entry_attr) else {
                continue;
            };
            let Some(interval) = self.enclosing_interval(pred) else {
                continue;
            };
            // Walk every cluster on the containment path — the expression
            // may have been placed before deeper clusters existed.
            let mut cur = Some(self.pnodes[pnode as usize].entries[e].root_cluster);
            used[entry_attr.index()] = true;
            while let Some(c) = cur {
                let cluster = &self.clusters[c as usize];
                let (lo, hi) = (cluster.lo, cluster.hi);
                let (left, right, target) = (cluster.left, cluster.right, cluster.cnode);
                if !(lo <= interval.0 && interval.1 <= hi) {
                    break;
                }
                if self.remove_from(target, sub, used) {
                    used[entry_attr.index()] = false;
                    return true;
                }
                let mid = lo + (hi - lo) / 2;
                cur = if lo == hi {
                    None
                } else if interval.1 <= mid {
                    left
                } else if interval.0 > mid {
                    right
                } else {
                    None
                };
            }
            used[entry_attr.index()] = false;
        }
        false
    }

    fn match_into(&self, cnode: CNodeId, ev: &Event, out: &mut Vec<SubId>) {
        self.visit_cnode(cnode, ev, &mut |tree, c| {
            for sub in &tree.cnodes[c as usize].bucket {
                if sub.matches(ev) {
                    out.push(sub.id());
                }
            }
        });
    }

    /// The access-pruned traversal shared by the plain and hybrid matchers:
    /// calls `f` for every c-node whose path is compatible with `ev`
    /// (the directory skips subtrees whose partitioning attribute the event
    /// lacks or whose value range excludes the event's value).
    fn visit_cnode(&self, cnode: CNodeId, ev: &Event, f: &mut impl FnMut(&Self, CNodeId)) {
        f(self, cnode);
        let Some(pnode) = self.cnodes[cnode as usize].pnode else {
            return;
        };
        for entry in &self.pnodes[pnode as usize].entries {
            let Some(v) = ev.value(entry.attr) else {
                // Event lacks the attribute: nothing under this entry can
                // match (presence partitioning guarantees every expression
                // here has a predicate on it).
                continue;
            };
            let mut cur = Some(entry.root_cluster);
            while let Some(c) = cur {
                let cluster = &self.clusters[c as usize];
                if v < cluster.lo || v > cluster.hi {
                    break;
                }
                self.visit_cnode(cluster.cnode, ev, f);
                let mid = cluster.lo + (cluster.hi - cluster.lo) / 2;
                cur = if v <= mid {
                    cluster.left
                } else {
                    cluster.right
                };
            }
        }
    }

    /// Visits every c-node the tree would inspect for `ev`; used by the
    /// hybrid engine to swap bucket evaluation for compressed bitmaps.
    pub(crate) fn visit_matching_cnodes(&self, ev: &Event, mut f: impl FnMut(u32)) {
        self.visit_cnode(self.root, ev, &mut |_, c| f(c));
    }

    /// Number of c-nodes in the arena (bucket slots for the hybrid engine).
    pub(crate) fn n_cnodes(&self) -> usize {
        self.cnodes.len()
    }

    /// The expressions resident in bucket `cnode`.
    pub(crate) fn bucket_subs(&self, cnode: u32) -> &[Subscription] {
        &self.cnodes[cnode as usize].bucket
    }

    /// Schema accessor (used by the harness for workload re-validation).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub(crate) fn arena_sizes(&self) -> (usize, usize, usize) {
        (self.cnodes.len(), self.pnodes.len(), self.clusters.len())
    }

    pub(crate) fn bucket_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.cnodes.iter().map(|c| c.bucket.len())
    }

    pub(crate) fn root_bucket_len(&self) -> usize {
        self.cnodes[self.root as usize].bucket.len()
    }
}

impl Matcher for BeTree {
    fn match_event(&self, ev: &Event) -> Vec<SubId> {
        let mut out = Vec::new();
        self.match_into(self.root, ev, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn name(&self) -> &'static str {
        "BE-TREE"
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::parser;
    use apcm_workload::{OperatorMix, WorkloadSpec};

    fn scan_match(subs: &[Subscription], ev: &Event) -> Vec<SubId> {
        let mut out: Vec<SubId> = subs
            .iter()
            .filter(|s| s.matches(ev))
            .map(|s| s.id())
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn single_insert_and_match() {
        let schema = Schema::uniform(3, 100);
        let mut tree = BeTree::new(&schema);
        let sub =
            parser::parse_subscription_with_id(&schema, SubId(5), "a0 = 7 AND a1 > 50").unwrap();
        tree.insert(sub).unwrap();
        assert_eq!(tree.len(), 1);
        let hit = parser::parse_event(&schema, "a0 = 7, a1 = 80").unwrap();
        assert_eq!(tree.match_event(&hit), vec![SubId(5)]);
        let miss = parser::parse_event(&schema, "a0 = 7, a1 = 20").unwrap();
        assert!(tree.match_event(&miss).is_empty());
    }

    #[test]
    fn splits_and_still_agrees_with_scan() {
        let wl = WorkloadSpec::new(2000)
            .seed(31)
            .planted_fraction(0.3)
            .build();
        let config = BeTreeConfig {
            max_bucket: 8,
            max_cdir_depth: 8,
        };
        let tree = BeTree::build_with_config(&wl.schema, &wl.subs, config).unwrap();
        assert_eq!(tree.len(), 2000);
        let (cn, pn, cl) = tree.arena_sizes();
        assert!(
            pn > 0 && cl > 0,
            "tree must split: {cn} c-nodes, {pn} p-nodes, {cl} clusters"
        );
        for ev in wl.events(60) {
            assert_eq!(tree.match_event(&ev), scan_match(&wl.subs, &ev));
        }
    }

    #[test]
    fn range_heavy_workload_agrees() {
        let wl = WorkloadSpec::new(1000)
            .operators(OperatorMix::range_heavy())
            .planted_fraction(0.4)
            .seed(32)
            .build();
        let tree = BeTree::build_with_config(
            &wl.schema,
            &wl.subs,
            BeTreeConfig {
                max_bucket: 4,
                max_cdir_depth: 10,
            },
        )
        .unwrap();
        for ev in wl.events(60) {
            assert_eq!(tree.match_event(&ev), scan_match(&wl.subs, &ev));
        }
    }

    #[test]
    fn duplicate_expressions_unsplittable_bucket() {
        // 100 identical single-predicate expressions: after one split they
        // all land in one cluster bucket whose path has used the attribute —
        // the bucket must overflow gracefully instead of looping.
        let schema = Schema::uniform(2, 100);
        let mut tree = BeTree::with_config(
            &schema,
            BeTreeConfig {
                max_bucket: 4,
                max_cdir_depth: 6,
            },
        );
        for i in 0..100 {
            let sub = parser::parse_subscription_with_id(&schema, SubId(i), "a0 BETWEEN 10 AND 20")
                .unwrap();
            tree.insert(sub).unwrap();
        }
        let ev = parser::parse_event(&schema, "a0 = 15").unwrap();
        assert_eq!(tree.match_event(&ev).len(), 100);
        let ev = parser::parse_event(&schema, "a0 = 25").unwrap();
        assert!(tree.match_event(&ev).is_empty());
    }

    #[test]
    fn negation_predicates_agree() {
        let schema = Schema::uniform(2, 50);
        let mut subs = Vec::new();
        for i in 0..40u32 {
            let text = format!("a0 != {} AND a1 NOT IN {{{}}}", i % 50, (i + 3) % 50);
            subs.push(parser::parse_subscription_with_id(&schema, SubId(i), &text).unwrap());
        }
        let tree = BeTree::build_with_config(
            &schema,
            &subs,
            BeTreeConfig {
                max_bucket: 4,
                max_cdir_depth: 6,
            },
        )
        .unwrap();
        for v in 0..50 {
            let ev =
                parser::parse_event(&schema, &format!("a0 = {v}, a1 = {}", (v + 1) % 50)).unwrap();
            assert_eq!(tree.match_event(&ev), scan_match(&subs, &ev));
        }
    }

    #[test]
    fn remove_finds_expressions_wherever_they_sit() {
        let wl = WorkloadSpec::new(500).seed(33).build();
        let mut tree = BeTree::build_with_config(
            &wl.schema,
            &wl.subs,
            BeTreeConfig {
                max_bucket: 8,
                max_cdir_depth: 8,
            },
        )
        .unwrap();
        // Remove every third subscription.
        let mut remaining = Vec::new();
        for (i, sub) in wl.subs.iter().enumerate() {
            if i % 3 == 0 {
                assert!(tree.remove(sub), "must find sub {i}");
            } else {
                remaining.push(sub.clone());
            }
        }
        assert_eq!(tree.len(), remaining.len());
        for ev in wl.events(40) {
            assert_eq!(tree.match_event(&ev), scan_match(&remaining, &ev));
        }
        // Removing again reports absence.
        assert!(!tree.remove(&wl.subs[0]));
    }

    #[test]
    fn insert_after_splits_goes_to_right_place() {
        let wl = WorkloadSpec::new(300).seed(34).build();
        let mut tree = BeTree::with_config(
            &wl.schema,
            BeTreeConfig {
                max_bucket: 8,
                max_cdir_depth: 8,
            },
        );
        for sub in &wl.subs {
            tree.insert(sub.clone()).unwrap();
        }
        // Interleave inserts and matches.
        let extra = WorkloadSpec::new(100).seed(35).build();
        for sub in &extra.subs {
            let mut renumbered = sub.clone();
            // Give unique ids beyond the original corpus.
            renumbered = Subscription::new(
                SubId(1000 + renumbered.id().0),
                renumbered.predicates().to_vec(),
            )
            .unwrap();
            tree.insert(renumbered).unwrap();
        }
        let mut all = wl.subs.clone();
        all.extend(
            extra.subs.iter().map(|s| {
                Subscription::new(SubId(1000 + s.id().0), s.predicates().to_vec()).unwrap()
            }),
        );
        for ev in wl.events(40) {
            assert_eq!(tree.match_event(&ev), scan_match(&all, &ev));
        }
    }

    #[test]
    fn rejects_invalid_subscription() {
        let schema = Schema::uniform(2, 10);
        let mut tree = BeTree::new(&schema);
        let bad = Subscription::new(
            SubId(0),
            vec![Predicate::new(AttrId(7), apcm_bexpr::Op::Eq(1))],
        )
        .unwrap();
        assert!(tree.insert(bad).is_err());
        assert_eq!(tree.len(), 0);
    }

    #[test]
    fn empty_tree_matches_nothing() {
        let schema = Schema::uniform(2, 10);
        let tree = BeTree::new(&schema);
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert!(tree.match_event(&ev).is_empty());
        assert!(tree.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use apcm_workload::WorkloadSpec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// BE-Tree agrees with brute force across random workload shapes.
        #[test]
        fn agrees_with_scan(
            seed in 0u64..1000,
            max_bucket in 2usize..40,
            dims in 4usize..12,
        ) {
            let wl = WorkloadSpec::new(300)
                .dims(dims)
                .sub_preds(1, 3.min(dims))
                .event_size(dims.min(6))
                .planted_fraction(0.4)
                .seed(seed)
                .build();
            let tree = BeTree::build_with_config(
                &wl.schema,
                &wl.subs,
                BeTreeConfig { max_bucket, max_cdir_depth: 8 },
            )
            .unwrap();
            for ev in wl.events(15) {
                let mut expect: Vec<SubId> = wl
                    .subs
                    .iter()
                    .filter(|s| s.matches(&ev))
                    .map(|s| s.id())
                    .collect();
                expect.sort_unstable();
                prop_assert_eq!(tree.match_event(&ev), expect);
            }
        }
    }
}
