//! Hybrid engine: BE-Tree access pruning + compressed bitmap buckets.
//!
//! This is the composition the PCM paper actually describes: the tree's
//! two-phase space partitioning decides *which* expressions an event could
//! match (access pruning), and the leaf evaluation is replaced by the
//! compressed bitmap kernel — each bucket's expressions are factored into a
//! shared mask plus sparse residuals and tested against the event's
//! satisfied-predicate bitmap, so the per-bucket work is a few indexed bit
//! probes instead of a per-expression predicate walk.
//!
//! Compared to the flat pivot-indexed matcher in `apcm-core`, the hybrid
//! prunes *spatially* (value ranges along the directory path) rather than by
//! one access predicate; the evaluation compares the two reconstructions of
//! the paper's design on equal footing (experiment E1's engine column and
//! the cross-engine agreement suite include both).
//!
//! The hybrid is a static engine: build once, match many. Dynamic churn goes
//! through `apcm-core`'s A-PCM.

use crate::{BeTree, BeTreeConfig};
use apcm_bexpr::{BexprError, Event, Matcher, Schema, SubId, Subscription};
use apcm_core::Cluster;
use apcm_encoding::{EncodedSub, PredicateSpace};

/// BE-Tree traversal over compressed buckets; see the module docs.
#[derive(Debug)]
pub struct HybridPcmTree {
    tree: BeTree,
    space: PredicateSpace,
    /// Compressed bucket per c-node (`None` for empty buckets).
    buckets: Vec<Option<Cluster>>,
    len: usize,
}

impl HybridPcmTree {
    /// Builds with default tree tuning.
    pub fn build(schema: &Schema, subs: &[Subscription]) -> Result<Self, BexprError> {
        Self::build_with_config(schema, subs, BeTreeConfig::default())
    }

    /// Builds the tree, then compresses every bucket against the shared
    /// predicate space.
    pub fn build_with_config(
        schema: &Schema,
        subs: &[Subscription],
        config: BeTreeConfig,
    ) -> Result<Self, BexprError> {
        let tree = BeTree::build_with_config(schema, subs, config)?;
        let (space, _) = PredicateSpace::build(schema, subs)?;
        let mut buckets = Vec::with_capacity(tree.n_cnodes());
        for cnode in 0..tree.n_cnodes() as u32 {
            let bucket = tree.bucket_subs(cnode);
            if bucket.is_empty() {
                buckets.push(None);
                continue;
            }
            let encoded: Vec<EncodedSub> = bucket
                .iter()
                .map(|sub| {
                    space
                        .try_encode(sub)
                        .expect("bucket expressions come from the same corpus")
                })
                .collect();
            buckets.push(Some(Cluster::compressed(&encoded)));
        }
        Ok(Self {
            tree,
            space,
            buckets,
            len: subs.len(),
        })
    }

    /// Bucket compression statistics: `(compressed buckets, total members,
    /// bitmap heap bytes)`.
    pub fn bucket_stats(&self) -> (usize, usize, usize) {
        let mut buckets = 0;
        let mut members = 0;
        let mut bytes = 0;
        for cluster in self.buckets.iter().flatten() {
            buckets += 1;
            members += cluster.len();
            bytes += cluster.heap_bytes();
        }
        (buckets, members, bytes)
    }
}

impl Matcher for HybridPcmTree {
    fn match_event(&self, ev: &Event) -> Vec<SubId> {
        let ebits = self.space.encode_event(ev);
        let mut out = Vec::new();
        self.tree.visit_matching_cnodes(ev, |cnode| {
            if let Some(cluster) = &self.buckets[cnode as usize] {
                cluster.match_into(&ebits, &mut out);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    fn name(&self) -> &'static str {
        "HYBRID"
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_baselines::SequentialScan;
    use apcm_bexpr::parser;
    use apcm_workload::{OperatorMix, WorkloadSpec};

    fn config() -> BeTreeConfig {
        BeTreeConfig {
            max_bucket: 8,
            max_cdir_depth: 8,
        }
    }

    #[test]
    fn agrees_with_scan_on_random_workloads() {
        for seed in [111u64, 112, 113] {
            let wl = WorkloadSpec::new(1000)
                .seed(seed)
                .planted_fraction(0.3)
                .build();
            let hybrid = HybridPcmTree::build_with_config(&wl.schema, &wl.subs, config()).unwrap();
            let scan = SequentialScan::new(&wl.subs);
            assert_eq!(hybrid.len(), 1000);
            for ev in wl.events(40) {
                assert_eq!(
                    hybrid.match_event(&ev),
                    scan.match_event(&ev),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn agrees_on_operator_extremes() {
        for mix in [OperatorMix::equality_only(), OperatorMix::range_heavy()] {
            let wl = WorkloadSpec::new(600)
                .operators(mix)
                .planted_fraction(0.4)
                .seed(114)
                .build();
            let hybrid = HybridPcmTree::build_with_config(&wl.schema, &wl.subs, config()).unwrap();
            let scan = SequentialScan::new(&wl.subs);
            for ev in wl.events(40) {
                assert_eq!(hybrid.match_event(&ev), scan.match_event(&ev));
            }
        }
    }

    #[test]
    fn buckets_account_for_every_expression() {
        let wl = WorkloadSpec::new(800).seed(115).build();
        let hybrid = HybridPcmTree::build_with_config(&wl.schema, &wl.subs, config()).unwrap();
        let (buckets, members, bytes) = hybrid.bucket_stats();
        assert_eq!(members, 800, "every expression sits in exactly one bucket");
        assert!(buckets > 1, "the tree must have split");
        assert!(bytes > 0);
    }

    #[test]
    fn empty_and_tiny_corpora() {
        let schema = apcm_bexpr::Schema::uniform(3, 10);
        let hybrid = HybridPcmTree::build(&schema, &[]).unwrap();
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert!(hybrid.match_event(&ev).is_empty());
        assert!(hybrid.is_empty());

        let one = vec![parser::parse_subscription_with_id(&schema, SubId(5), "a0 = 1").unwrap()];
        let hybrid = HybridPcmTree::build(&schema, &one).unwrap();
        assert_eq!(hybrid.match_event(&ev), vec![SubId(5)]);
    }

    #[test]
    fn negation_heavy_corpus() {
        let schema = apcm_bexpr::Schema::uniform(3, 50);
        let subs: Vec<Subscription> = (0..100u32)
            .map(|i| {
                parser::parse_subscription_with_id(
                    &schema,
                    SubId(i),
                    &format!(
                        "a0 != {} AND a1 NOT IN {{{}, {}}}",
                        i % 50,
                        i % 50,
                        (i + 7) % 50
                    ),
                )
                .unwrap()
            })
            .collect();
        let hybrid = HybridPcmTree::build_with_config(&schema, &subs, config()).unwrap();
        let scan = SequentialScan::new(&subs);
        for v in 0..50 {
            let ev =
                parser::parse_event(&schema, &format!("a0 = {v}, a1 = {}", (v + 3) % 50)).unwrap();
            assert_eq!(hybrid.match_event(&ev), scan.match_event(&ev), "v={v}");
        }
    }
}
