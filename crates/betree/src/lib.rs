//! BE-Tree: a two-phase space-partitioning index for Boolean expressions.
//!
//! Reimplementation of the index of Sadoghi & Jacobsen (ICDE 2011 / TODS
//! 2013), which the A-PCM paper uses as its sequential state-of-the-art
//! comparator. BE-Tree organizes a high-dimensional discrete space by
//! alternating two phases:
//!
//! * **Partitioning** — an overflowing bucket (*c-node*) is split by a
//!   *p-node* that directs expressions by the *presence* of a chosen
//!   attribute; expressions lacking every directory attribute stay behind in
//!   the bucket.
//! * **Clustering** — under each p-node attribute entry, a *c-directory*
//!   recursively halves the attribute's domain; an expression descends to
//!   the smallest half fully containing its predicate's satisfaction
//!   interval. Each directory cluster owns a c-node of its own, so the two
//!   phases alternate down the tree.
//!
//! Matching walks only the clusters whose ranges contain the event's value
//! on each directory attribute, so whole subtrees of irrelevant expressions
//! are skipped.
//!
//! ## Documented deviations from the original
//!
//! The TODS text leaves several policies open or describes engineering we
//! simplify; each choice is local and none changes the matching semantics:
//!
//! * Attribute selection on split: highest presence count in the bucket
//!   (ties: lower average selectivity). The original adds a global
//!   popularity ranking ("rPop").
//! * Predicates are placed by their *enclosing* satisfaction interval;
//!   negations therefore sit near the c-directory root (the original treats
//!   them identically).
//! * Deletions remove expressions in place; empty structures are not merged
//!   (the original defers merging too).
//!
//! ```
//! use apcm_betree::BeTree;
//! use apcm_bexpr::{parser, Matcher, Schema, SubId};
//!
//! let schema = Schema::uniform(4, 100);
//! let mut tree = BeTree::new(&schema);
//! let sub = parser::parse_subscription_with_id(&schema, SubId(3), "a0 BETWEEN 10 AND 20").unwrap();
//! tree.insert(sub).unwrap();
//! let ev = parser::parse_event(&schema, "a0 = 15").unwrap();
//! assert_eq!(tree.match_event(&ev), vec![SubId(3)]);
//! ```

pub mod hybrid;
pub mod stats;
pub mod tree;

pub use hybrid::HybridPcmTree;
pub use stats::BeTreeStats;
pub use tree::{BeTree, BeTreeConfig};
