//! Predicate-summary routing drills: the router's first-stage A-PCM
//! prune over whole backends.
//!
//! * with per-backend subscription ranges made disjoint on purpose, a
//!   targeted window is served by a strict subset of backends
//!   (`backends_pruned` counts the skips) and the merged rows stay
//!   byte-identical to a single-process oracle — a pruned backend never
//!   held a matching subscription;
//! * under seeded SUB/UNSUB/PUB churn with summaries refreshed between
//!   rounds, every routed row is byte-identical to the oracle — stale
//!   summaries may only ever widen the fan-out, never narrow a row;
//! * a `RESHARD ADD` mid-publish disables pruning for the whole window
//!   stream (no dropped rows, nothing partial), and completed migrations
//!   invalidate every cached summary so pruning re-establishes itself on
//!   the new topology.

use apcm_bexpr::{AttrId, Event, Op, Predicate, Schema, SubId, Subscription};
use apcm_cluster::{ClusterHandle, RouterConfig};
use apcm_server::client::ConnectOptions;
use apcm_server::protocol::render_result;
use apcm_server::{BrokerClient, EngineChoice, PersistConfig, Ring, ServerConfig};
use apcm_workload::WorkloadSpec;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const N_BACKENDS: usize = 3;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apcm-summary-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn backend_config(engine: EngineChoice) -> ServerConfig {
    ServerConfig {
        shards: 2,
        engine,
        window: 32,
        flush_interval: Duration::from_millis(2),
        maintenance_interval: Duration::from_millis(50),
        ..ServerConfig::default()
    }
}

fn node_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        repl_ack_every: 2,
        persist: Some(PersistConfig {
            snapshot_interval: None,
            retry_backoff: Duration::from_millis(20),
            ..PersistConfig::new(dir)
        }),
        ..backend_config(EngineChoice::Apcm)
    }
}

/// Fast health cadence so summary refreshes fit in test time.
fn router_config() -> RouterConfig {
    RouterConfig {
        health_interval: Duration::from_millis(25),
        probe_timeout: Duration::from_millis(500),
        connect: ConnectOptions {
            connect_timeout: Some(Duration::from_millis(500)),
            read_timeout: Some(Duration::from_secs(10)),
            attempts: 1,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..ConnectOptions::default()
        },
        ..RouterConfig::default()
    }
}

fn connect(addr: &str) -> BrokerClient {
    let mut client = BrokerClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client.set_churn_retry(120, Duration::from_millis(25));
    client
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(15));
    }
    panic!("timed out waiting for {what}");
}

fn wait_backends_up(client: &mut BrokerClient, want: usize) {
    wait_until("backends up", || {
        client
            .topology()
            .unwrap()
            .iter()
            .filter(|l| l.contains(" up "))
            .count()
            == want
    });
}

/// Waits until every listed partition's `TOPOLOGY` summary line reports a
/// cached epoch (i.e. the sweep refreshed it after the last churn-driven
/// invalidation) — the point from which scatter may prune against it.
fn wait_summaries_fresh(client: &mut BrokerClient, members: &[usize]) {
    wait_until("summaries fresh", || {
        let lines = client.topology().unwrap();
        members.iter().all(|m| {
            lines
                .iter()
                .any(|l| l.starts_with(&format!("summary {m} epoch")))
        })
    });
}

/// Brute-force oracle rows over the live set, sorted ascending — the same
/// contract the router's merge promises.
fn oracle_rows(subs: &[&Subscription], events: &[Event]) -> Vec<Vec<SubId>> {
    events
        .iter()
        .map(|ev| {
            let mut row: Vec<SubId> = subs
                .iter()
                .filter(|s| s.matches(ev))
                .map(|s| s.id())
                .collect();
            row.sort_unstable();
            row
        })
        .collect()
}

/// Publishes `events` and asserts the merged rows are byte-identical to
/// the oracle over `live`, nothing partial.
fn assert_window_matches(
    client: &mut BrokerClient,
    schema: &Schema,
    live: &[&Subscription],
    events: &[Event],
    context: &str,
) {
    let results = client.publish_batch_flagged(events, schema).unwrap();
    assert_eq!(results.len(), events.len(), "{context}");
    let expect = oracle_rows(live, events);
    let base = *results.keys().next().unwrap();
    for (seq, (row, partial)) in &results {
        let i = (seq - base) as usize;
        assert!(!partial, "{context}: event {i} flagged partial");
        assert_eq!(
            render_result(*seq, row),
            render_result(*seq, &expect[i]),
            "{context}: event {i}"
        );
    }
}

/// A subscription pinning attribute 0 into `[lo, hi]`.
fn range_sub(id: u32, lo: i64, hi: i64) -> Subscription {
    Subscription::new(
        SubId(id),
        vec![Predicate::new(AttrId(0), Op::Between(lo, hi))],
    )
    .unwrap()
}

/// One event `(a0, a1)`.
fn event(a0: i64, a1: i64) -> Event {
    Event::new(vec![(AttrId(0), a0), (AttrId(1), a1)]).unwrap()
}

/// Disjoint per-backend value ranges on attribute 0, keyed by the ring
/// placement of each id — so a window confined to one range can provably
/// skip the other backends.
const RANGES: [(i64, i64); N_BACKENDS] = [(0, 99), (450, 549), (900, 999)];

/// Targeted windows against range-disjoint backends: scatter skips the
/// backends whose summaries cannot cover the window, the merged rows stay
/// byte-identical to the oracle, and a window aimed at a previously
/// pruned backend still reaches it (pruning is per-window, not sticky).
#[test]
fn pruned_scatter_is_sound_and_skips_disjoint_backends() {
    let schema = Schema::uniform(2, 1000);
    let cluster = ClusterHandle::start(
        schema.clone(),
        (0..N_BACKENDS)
            .map(|_| backend_config(EngineChoice::Apcm))
            .collect(),
        router_config(),
    )
    .unwrap();
    let mut client = connect(&cluster.router_addr());
    wait_backends_up(&mut client, N_BACKENDS);

    let ring = Ring::new(&[0, 1, 2]);
    let subs: Vec<Subscription> = (0..60)
        .map(|id| {
            let (lo, hi) = RANGES[ring.route(SubId(id)) as usize];
            range_sub(id, lo, hi)
        })
        .collect();
    for sub in &subs {
        client.subscribe(sub, &schema).unwrap();
    }
    // Every backend must actually hold part of the catalog, or the prune
    // assertions below would be vacuous.
    for member in 0..N_BACKENDS {
        assert!(
            subs.iter().any(|s| ring.route(s.id()) == member as u32),
            "no subscriptions landed on backend {member}"
        );
    }
    wait_summaries_fresh(&mut client, &[0, 1, 2]);

    let before = client.stats().unwrap();
    let all: Vec<&Subscription> = subs.iter().collect();
    // Three windows confined to backend 1's range: backends 0 and 2 are
    // provably unmatchable and must be skipped.
    for round in 0..3 {
        let events: Vec<Event> = (0..16)
            .map(|i| event(450 + (i * 7 + round * 3) % 100, i))
            .collect();
        let expect = oracle_rows(&all, &events);
        assert!(
            expect.iter().any(|row| !row.is_empty()),
            "targeted window matched nothing: the drill is vacuous"
        );
        assert_window_matches(
            &mut client,
            &schema,
            &all,
            &events,
            &format!("targeted window {round}"),
        );
    }
    // And one window aimed at backend 0's range: the prune must not be
    // sticky — the previously skipped backend serves this one.
    let events: Vec<Event> = (0..8).map(|i| event(i * 11 % 100, i)).collect();
    let expect = oracle_rows(&all, &events);
    assert!(expect.iter().any(|row| !row.is_empty()));
    assert_window_matches(&mut client, &schema, &all, &events, "re-aimed window");

    let after = client.stats().unwrap();
    let pruned = after["backends_pruned"] - before["backends_pruned"];
    let sent = after["fanouts_sent"] - before["fanouts_sent"];
    let possible = after["fanouts_possible"] - before["fanouts_possible"];
    // The three targeted windows each skip two backends; the re-aimed
    // window skips backends 1 and 2.
    assert!(pruned >= 6, "expected >=6 pruned sends, got {pruned}");
    assert_eq!(sent + pruned, possible);
    assert!(sent < possible, "pruning never reduced the fan-out");
    assert!(after["summary_refreshes"] >= N_BACKENDS as u64);
    assert_eq!(after["cluster_degraded"], 0);

    client.quit().unwrap();
    let rendered = cluster.shutdown();
    assert!(rendered.contains("pruned_fanout_ratio 0."), "{rendered}");
}

/// Seeded SUB/UNSUB/PUB churn with summaries allowed to refresh between
/// rounds: every routed row stays byte-identical to the single-process
/// oracle. This is the safety half of the prune — no sequence of churn
/// and refresh may ever narrow a row, only widen the fan-out.
#[test]
fn seeded_churn_rounds_stay_byte_identical_with_pruning() {
    let wl = WorkloadSpec::new(150).seed(0x5A11).build();
    let cluster = ClusterHandle::start(
        wl.schema.clone(),
        vec![
            backend_config(EngineChoice::Apcm),
            backend_config(EngineChoice::Scan),
            backend_config(EngineChoice::BetreeHybrid),
        ],
        router_config(),
    )
    .unwrap();
    let mut client = connect(&cluster.router_addr());
    wait_backends_up(&mut client, N_BACKENDS);

    let mut rng = StdRng::seed_from_u64(0x5A11_5A11);
    let mut live = vec![false; wl.subs.len()];
    for round in 0..6 {
        for (i, sub) in wl.subs.iter().enumerate() {
            if !live[i] && rng.gen_bool(0.5) {
                client.subscribe(sub, &wl.schema).unwrap();
                live[i] = true;
            } else if live[i] && rng.gen_bool(0.3) {
                client.unsubscribe(sub.id()).unwrap();
                live[i] = false;
            }
        }
        // Let the sweep re-establish every summary after the churn-driven
        // invalidations, so these windows run with pruning live.
        wait_summaries_fresh(&mut client, &[0, 1, 2]);
        let events = wl.events(24 + round);
        let live_subs: Vec<&Subscription> = wl
            .subs
            .iter()
            .enumerate()
            .filter(|(i, _)| live[*i])
            .map(|(_, s)| s)
            .collect();
        assert_window_matches(
            &mut client,
            &wl.schema,
            &live_subs,
            &events,
            &format!("churn round {round}"),
        );
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats["cluster_degraded"], 0);
    assert!(stats["summary_refreshes"] >= N_BACKENDS as u64);
    assert_eq!(
        stats["fanouts_sent"] + stats["backends_pruned"],
        stats["fanouts_possible"]
    );

    client.quit().unwrap();
    cluster.shutdown();
}

/// Migration interplay: a `RESHARD ADD` mid-publish forces conservative
/// full fan-out (nothing pruned, nothing partial, zero dropped rows), and
/// completion invalidates every cached summary so pruning re-establishes
/// itself against the post-migration catalog.
#[test]
fn reshard_disables_pruning_then_reestablishes_it() {
    let schema = Schema::uniform(2, 1000);
    let dir = tmpdir("reshard");
    let mut cluster = ClusterHandle::start_replicated(
        schema.clone(),
        (0..2)
            .map(|i| {
                (
                    node_config(&dir.join(format!("p{i}-primary"))),
                    Some(node_config(&dir.join(format!("p{i}-replica")))),
                )
            })
            .collect(),
        router_config(),
    )
    .unwrap();
    let mut client = connect(&cluster.router_addr());
    // Two replicated partitions: four nodes total.
    wait_backends_up(&mut client, 4);

    // Range-disjoint catalog on the old 2-member ring: backend 0 ids pin
    // a0 into [0,99], backend 1 ids into [900,999].
    let old_ring = Ring::new(&[0, 1]);
    let mut subs: Vec<Subscription> = (0..80)
        .map(|id| {
            let (lo, hi) = match old_ring.route(SubId(id)) {
                0 => (0, 99),
                _ => (900, 999),
            };
            range_sub(id, lo, hi)
        })
        .collect();
    for sub in &subs {
        client.subscribe(sub, &schema).unwrap();
    }
    wait_summaries_fresh(&mut client, &[0, 1]);

    // Pruning works on the pre-migration topology: a low-range window
    // skips backend 1.
    let before = client.stats().unwrap();
    let all: Vec<&Subscription> = subs.iter().collect();
    let events: Vec<Event> = (0..12).map(|i| event(i * 9 % 100, i)).collect();
    assert_window_matches(&mut client, &schema, &all, &events, "pre-reshard window");
    let mid = client.stats().unwrap();
    assert!(
        mid["backends_pruned"] > before["backends_pruned"],
        "pre-reshard window pruned nothing"
    );

    // Scale out 2 -> 3 with a background publisher hammering mixed-range
    // windows: every window must come back complete (zero dropped rows)
    // even though summaries go conservative mid-migration.
    let stop = AtomicBool::new(false);
    let addr = cluster.router_addr();
    std::thread::scope(|scope| {
        struct StopOnDrop<'a>(&'a AtomicBool);
        impl Drop for StopOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let _stop_on_unwind = StopOnDrop(&stop);
        let publisher = scope.spawn(|| {
            let mut pub_client = connect(&addr);
            let mut windows = 0u64;
            let mut k = 0i64;
            while !stop.load(Ordering::SeqCst) {
                let events: Vec<Event> = (0..6)
                    .map(|i| {
                        k += 1;
                        match (k + i) % 3 {
                            0 => event((k * 13) % 100, i),
                            1 => event(450 + (k * 13) % 100, i),
                            _ => event(900 + (k * 13) % 100, i),
                        }
                    })
                    .collect();
                let results = pub_client.publish_batch_flagged(&events, &schema).unwrap();
                for (seq, (_, partial)) in &results {
                    assert!(!partial, "window at seq {seq} partial mid-migration");
                }
                windows += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            windows
        });

        let primary = node_config(&dir.join("p2-primary"));
        let replica = node_config(&dir.join("p2-replica"));
        let slot = cluster.add_backend_pair(primary, Some(replica)).unwrap();
        assert_eq!(slot, 2);
        client
            .reshard_add(cluster.node_addr(slot, 0), Some(cluster.node_addr(slot, 1)))
            .unwrap();

        // Churn through the migration: fresh mid-range subscriptions for
        // ids the *new* ring moves onto the joiner.
        let new_ring = Ring::new(&[0, 1, 2]);
        let mut next_id = 80u32;
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let status = client.reshard_status().unwrap();
            if status == "OK reshard idle" {
                break;
            }
            assert!(Instant::now() < deadline, "migration stuck: {status}");
            if next_id < 110 && new_ring.route(SubId(next_id)) == 2 {
                let sub = range_sub(next_id, 450, 549);
                client.subscribe(&sub, &schema).unwrap();
                subs.push(sub);
            }
            if next_id < 110 {
                next_id += 1;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Guarantee the joiner holds mid-range subscriptions even if the
        // migration outpaced the loop above.
        while next_id < 110 {
            if new_ring.route(SubId(next_id)) == 2 {
                let sub = range_sub(next_id, 450, 549);
                client.subscribe(&sub, &schema).unwrap();
                subs.push(sub);
            }
            next_id += 1;
        }

        stop.store(true, Ordering::SeqCst);
        let windows = publisher.join().expect("publisher thread");
        assert!(windows > 0, "publisher never got a window through");
    });

    let stats = client.stats().unwrap();
    assert_eq!(stats["reshards_completed"], 1);
    assert_eq!(stats["cluster_degraded"], 0);
    assert!(
        subs.iter()
            .any(|s| Ring::new(&[0, 1, 2]).route(s.id()) == 2),
        "no mid-range subscriptions landed on the joiner"
    );

    // Post-migration: caches were invalidated at completion; once the
    // sweep refreshes all three, a mid-range window prunes both legacy
    // backends and still matches the joiner's subscriptions exactly.
    wait_summaries_fresh(&mut client, &[0, 1, 2]);
    let before = client.stats().unwrap();
    let all: Vec<&Subscription> = subs.iter().collect();
    let events: Vec<Event> = (0..12).map(|i| event(450 + i * 7 % 100, i)).collect();
    let expect = oracle_rows(&all, &events);
    assert!(
        expect.iter().any(|row| !row.is_empty()),
        "post-reshard targeted window matched nothing"
    );
    assert_window_matches(&mut client, &schema, &all, &events, "post-reshard window");
    let after = client.stats().unwrap();
    assert!(
        after["backends_pruned"] > before["backends_pruned"],
        "pruning never re-established after the reshard"
    );

    client.quit().unwrap();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
