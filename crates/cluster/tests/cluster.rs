//! Cluster integration tests: router + real backend servers on loopback.
//!
//! * the consistent-hash ring places subscriptions on exactly the
//!   backend `Ring::route` names (the wire contract);
//! * under randomized SUB/UNSUB/PUB churn, routed-and-merged rows are
//!   byte-identical to a single-process oracle over the same live set;
//! * killing a backend mid-stream degrades matching to the surviving
//!   partitions (rows flagged `partial`, `cluster_degraded` counted),
//!   churn routed at the dead backend is refused, and after a restart the
//!   backend recovers its durable subscriptions and rejoins.

use apcm_bexpr::{Event, SubId, Subscription};
use apcm_cluster::{ClusterHandle, RouterConfig};
use apcm_server::client::ConnectOptions;
use apcm_server::protocol::render_result;
use apcm_server::{BrokerClient, EngineChoice, PersistConfig, Ring, ServerConfig};
use apcm_workload::WorkloadSpec;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const N_BACKENDS: usize = 3;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apcm-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn backend_config(engine: EngineChoice) -> ServerConfig {
    ServerConfig {
        shards: 2,
        engine,
        window: 32,
        flush_interval: Duration::from_millis(2),
        maintenance_interval: Duration::from_millis(50),
        ..ServerConfig::default()
    }
}

/// Fast health cadence so failure detection and rejoin fit in test time.
fn router_config() -> RouterConfig {
    RouterConfig {
        health_interval: Duration::from_millis(25),
        connect: ConnectOptions {
            connect_timeout: Some(Duration::from_millis(500)),
            read_timeout: Some(Duration::from_secs(10)),
            attempts: 1,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..ConnectOptions::default()
        },
        ..RouterConfig::default()
    }
}

fn connect(addr: &str) -> BrokerClient {
    let client = BrokerClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client
}

/// Brute-force oracle rows over the live set, sorted ascending — the same
/// contract the router's merge promises.
fn oracle_rows(subs: &[&Subscription], events: &[Event]) -> Vec<Vec<SubId>> {
    events
        .iter()
        .map(|ev| {
            let mut row: Vec<SubId> = subs
                .iter()
                .filter(|s| s.matches(ev))
                .map(|s| s.id())
                .collect();
            row.sort_unstable();
            row
        })
        .collect()
}

/// Waits until the router's TOPOLOGY report shows `want` backends up.
fn wait_backends_up(client: &mut BrokerClient, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let lines = client.topology().unwrap();
        let up = lines.iter().filter(|l| l.contains(" up ")).count();
        if up == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "backends never came up: {lines:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The cluster-level pin of the routing contract: ids subscribed through
/// the router land on exactly the backend the consistent-hash ring
/// names. (The ring placement itself is pinned by golden tests in both
/// crates; this is the end-to-end half of that contract.)
#[test]
fn router_places_ids_on_the_contract_partition() {
    let wl = WorkloadSpec::new(120).seed(0xC1).build();
    let cluster = ClusterHandle::start(
        wl.schema.clone(),
        (0..N_BACKENDS)
            .map(|_| backend_config(EngineChoice::Scan))
            .collect(),
        router_config(),
    )
    .unwrap();
    let mut client = connect(&cluster.router_addr());
    wait_backends_up(&mut client, N_BACKENDS);

    for sub in &wl.subs {
        client.subscribe(sub, &wl.schema).unwrap();
    }
    let ring = Ring::new(&[0, 1, 2]);
    let mut expect = [0usize; N_BACKENDS];
    for sub in &wl.subs {
        expect[ring.route(sub.id()) as usize] += 1;
    }
    for (i, &want) in expect.iter().enumerate() {
        let got = cluster.backend(i).unwrap().engine().len();
        assert_eq!(got, want, "backend {i} subscription count");
    }

    client.quit().unwrap();
    cluster.shutdown();
}

/// Randomized SUB/UNSUB/PUB churn through the router, mixed backend
/// engines, versus a brute-force oracle over the live set. Rendered rows
/// must be byte-identical to the oracle's.
#[test]
fn scatter_gather_agrees_with_single_process_oracle() {
    let wl = WorkloadSpec::new(150).seed(0xC2).build();
    let cluster = ClusterHandle::start(
        wl.schema.clone(),
        vec![
            backend_config(EngineChoice::Apcm),
            backend_config(EngineChoice::Scan),
            backend_config(EngineChoice::BetreeHybrid),
        ],
        router_config(),
    )
    .unwrap();
    let mut client = connect(&cluster.router_addr());
    wait_backends_up(&mut client, N_BACKENDS);

    let mut rng = StdRng::seed_from_u64(0xC2C2);
    let mut live = vec![false; wl.subs.len()];
    for round in 0..6 {
        // Churn: every subscription flips live with p=0.5 each round.
        for (i, sub) in wl.subs.iter().enumerate() {
            if !live[i] && rng.gen_bool(0.5) {
                client.subscribe(sub, &wl.schema).unwrap();
                live[i] = true;
            } else if live[i] && rng.gen_bool(0.3) {
                client.unsubscribe(sub.id()).unwrap();
                live[i] = false;
            }
        }
        let events = wl.events(24 + round);
        let results = client.publish_batch_flagged(&events, &wl.schema).unwrap();
        assert_eq!(results.len(), events.len(), "round {round}");

        let live_subs: Vec<&Subscription> = wl
            .subs
            .iter()
            .enumerate()
            .filter(|(i, _)| live[*i])
            .map(|(_, s)| s)
            .collect();
        let expect = oracle_rows(&live_subs, &events);
        let base = *results.keys().next().unwrap();
        for (seq, (row, partial)) in &results {
            let i = (seq - base) as usize;
            assert!(!partial, "round {round} event {i} flagged partial");
            // Byte-identical rendered rows, not merely equal id sets.
            assert_eq!(
                render_result(*seq, row),
                render_result(*seq, &expect[i]),
                "round {round} event {i}"
            );
        }
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats["cluster_degraded"], 0);
    assert_eq!(stats["backends_up"], N_BACKENDS as u64);
    assert!(stats["windows"] >= 6);
    assert!(stats["subs_routed"] >= 1);
    assert!(stats["unsubs_routed"] >= 1);

    client.quit().unwrap();
    let rendered = cluster.shutdown();
    assert!(rendered.contains("cluster_degraded 0"));
}

/// Kill one backend mid-stream: surviving partitions keep matching with
/// rows flagged partial, churn at the dead backend is refused, ownership
/// reclaim works through the router, and after a restart the backend
/// recovers its durable subscriptions and rejoins cleanly.
#[test]
fn backend_failure_degrades_then_rejoins() {
    let wl = WorkloadSpec::new(90).seed(0xC3).build();
    let dir = tmpdir("rejoin");
    let configs: Vec<ServerConfig> = (0..N_BACKENDS)
        .map(|i| ServerConfig {
            persist: Some(PersistConfig::new(dir.join(format!("backend{i}")))),
            ..backend_config(EngineChoice::Apcm)
        })
        .collect();
    let mut cluster = ClusterHandle::start(wl.schema.clone(), configs, router_config()).unwrap();
    let mut client = connect(&cluster.router_addr());
    wait_backends_up(&mut client, N_BACKENDS);

    for sub in &wl.subs {
        client.subscribe(sub, &wl.schema).unwrap();
    }
    let all: Vec<&Subscription> = wl.subs.iter().collect();

    // Healthy window: full rows, nothing partial.
    let events = wl.events(20);
    let results = client.publish_batch_flagged(&events, &wl.schema).unwrap();
    let expect = oracle_rows(&all, &events);
    let base = *results.keys().next().unwrap();
    for (seq, (row, partial)) in &results {
        assert!(!partial);
        assert_eq!(row, &expect[(seq - base) as usize]);
    }

    // Crash backend 1 (no flush — durability comes from the churn log).
    const VICTIM: usize = 1;
    cluster.kill_backend(VICTIM);
    wait_backends_up(&mut client, N_BACKENDS - 1);

    // Mid-stream window: surviving partitions only, every row partial.
    let events = wl.events(20);
    let results = client.publish_batch_flagged(&events, &wl.schema).unwrap();
    let ring = Ring::new(&[0, 1, 2]);
    let survivors: Vec<&Subscription> = wl
        .subs
        .iter()
        .filter(|s| ring.route(s.id()) != VICTIM as u32)
        .collect();
    let expect = oracle_rows(&survivors, &events);
    let base = *results.keys().next().unwrap();
    for (seq, (row, partial)) in &results {
        assert!(partial, "event {} not flagged partial", seq - base);
        assert_eq!(row, &expect[(seq - base) as usize], "event {}", seq - base);
    }

    // Churn routed at the dead backend is refused with a structured error.
    let victim_sub = wl
        .subs
        .iter()
        .find(|s| ring.route(s.id()) == VICTIM as u32)
        .unwrap();
    let err = client.unsubscribe(victim_sub.id()).unwrap_err();
    assert!(
        err.to_string().contains("unavailable"),
        "unexpected error: {err}"
    );

    // Restart: recovery replays the churn log, the health sweep redials,
    // and full (non-partial) rows come back with no duplicates.
    cluster.restart_backend(VICTIM).unwrap();
    wait_backends_up(&mut client, N_BACKENDS);
    assert!(!cluster.backend(VICTIM).unwrap().engine().is_empty());

    let events = wl.events(20);
    let results = client.publish_batch_flagged(&events, &wl.schema).unwrap();
    let expect = oracle_rows(&all, &events);
    let base = *results.keys().next().unwrap();
    for (seq, (row, partial)) in &results {
        assert!(!partial, "event {} still partial after rejoin", seq - base);
        let i = (seq - base) as usize;
        assert_eq!(row, &expect[i], "event {i} after rejoin");
        let mut deduped = row.clone();
        deduped.dedup();
        assert_eq!(&deduped, row, "event {i} has duplicate ids");
    }

    // The recovered subscriptions have no owner on the restarted backend;
    // re-subscribing the identical expression through the router is an
    // ownership takeover, counted as a reclaim by the backend.
    assert!(client.subscribe_or_claim(victim_sub, &wl.schema).unwrap());
    let backend_stats = cluster.backend(VICTIM).unwrap().stats();
    assert!(apcm_server::ServerStats::get(&backend_stats.subs_reclaimed) >= 1);

    let stats = client.stats().unwrap();
    assert!(stats["cluster_degraded"] >= 1);
    assert!(stats["backend_errors"] >= 1);
    assert!(stats["backend_reconnects"] >= 1);
    assert!(stats["claims_routed"] >= 1);

    client.quit().unwrap();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// TOPOLOGY through the bundled client, and the explicit CLAIM verb
/// routed to a backend.
#[test]
fn topology_and_claim_round_trip() {
    let wl = WorkloadSpec::new(40).seed(0xC4).build();
    let cluster = ClusterHandle::start(
        wl.schema.clone(),
        (0..N_BACKENDS)
            .map(|_| backend_config(EngineChoice::Apcm))
            .collect(),
        router_config(),
    )
    .unwrap();
    let mut subscriber = connect(&cluster.router_addr());
    wait_backends_up(&mut subscriber, N_BACKENDS);

    let lines = subscriber.topology().unwrap();
    // One node line plus one summary line per partition.
    assert_eq!(lines.len(), 2 * N_BACKENDS);
    let node_lines: Vec<&String> = lines.iter().filter(|l| l.starts_with("backend ")).collect();
    assert_eq!(node_lines.len(), N_BACKENDS);
    for (i, line) in node_lines.iter().enumerate() {
        assert!(line.starts_with(&format!("backend {i} ")), "{line}");
        assert!(line.contains(" up "), "{line}");
        assert!(line.contains("ping_us"), "{line}");
    }
    for i in 0..N_BACKENDS {
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with(&format!("summary {i} "))),
            "missing summary line for partition {i}: {lines:?}"
        );
    }

    for sub in &wl.subs {
        subscriber.subscribe(sub, &wl.schema).unwrap();
    }
    // A second connection claims one id; the EVENT notification for a
    // matching publish must follow the new owner.
    let mut claimer = connect(&cluster.router_addr());
    claimer.claim(wl.subs[0].id()).unwrap();

    let stats = claimer.stats().unwrap();
    assert!(stats["claims_routed"] >= 1);
    assert_eq!(stats["backends"], N_BACKENDS as u64);

    subscriber.quit().unwrap();
    claimer.quit().unwrap();
    cluster.shutdown();
}
