//! Failover drills: replicated partitions behind the router.
//!
//! * killing a primary with a caught-up replica promotes the replica —
//!   match rows stay byte-identical to a single-process oracle, nothing
//!   is flagged `partial`, and no acknowledged churn is lost across
//!   kill → promote → rejoin → re-promote, including under injected
//!   replication-stream faults;
//! * a seeded randomized chaos drill interleaves churn with node kills,
//!   promotions, and restarts, then checks every acked churn op against
//!   the oracle.
//!
//! Failpoints are a process-global registry, so the tests serialize on
//! [`lock`].

use apcm_bexpr::{Event, SubId, Subscription};
use apcm_cluster::{ClusterHandle, RouterConfig};
use apcm_server::client::ConnectOptions;
use apcm_server::persist::failpoint::{self, FailAction};
use apcm_server::protocol::render_result;
use apcm_server::{BrokerClient, EngineChoice, PersistConfig, Role, ServerConfig};
use apcm_workload::WorkloadSpec;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

const PARTITIONS: usize = 2;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apcm-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn node_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        shards: 2,
        engine: EngineChoice::Apcm,
        window: 32,
        flush_interval: Duration::from_millis(2),
        maintenance_interval: Duration::from_millis(50),
        repl_ack_every: 2,
        persist: Some(PersistConfig {
            snapshot_interval: None,
            retry_backoff: Duration::from_millis(20),
            ..PersistConfig::new(dir)
        }),
        ..ServerConfig::default()
    }
}

/// Fast health cadence so failure detection, promotion, and rejoin fit in
/// test time.
fn router_config() -> RouterConfig {
    RouterConfig {
        health_interval: Duration::from_millis(25),
        connect: ConnectOptions {
            connect_timeout: Some(Duration::from_millis(500)),
            read_timeout: Some(Duration::from_secs(10)),
            attempts: 1,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..ConnectOptions::default()
        },
        ..RouterConfig::default()
    }
}

/// A replicated cluster: `PARTITIONS` partitions, each a primary + replica
/// pair with separate persist directories under `dir`.
fn replicated_cluster(schema: &apcm_bexpr::Schema, dir: &Path) -> ClusterHandle {
    let pairs = (0..PARTITIONS)
        .map(|i| {
            (
                node_config(&dir.join(format!("p{i}-primary"))),
                Some(node_config(&dir.join(format!("p{i}-replica")))),
            )
        })
        .collect();
    ClusterHandle::start_replicated(schema.clone(), pairs, router_config()).unwrap()
}

fn connect(addr: &str) -> BrokerClient {
    let mut client = BrokerClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Generous retry budget: churn issued mid-role-flip must ride out the
    // promotion window, not error.
    client.set_churn_retry(60, Duration::from_millis(25));
    client
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(15));
    }
    panic!("timed out waiting for {what}");
}

fn nodes_up(client: &mut BrokerClient) -> usize {
    client
        .topology()
        .unwrap()
        .iter()
        .filter(|l| l.contains(" up "))
        .count()
}

/// Whether every partition whose nodes are all running has its replica
/// caught up to the primary (applied sequences equal).
fn synced(cluster: &ClusterHandle) -> bool {
    (0..cluster.backend_count()).all(|p| match (cluster.node(p, 0), cluster.node(p, 1)) {
        (Some(a), Some(b)) => a.current_seq() == b.current_seq(),
        _ => true,
    })
}

/// The node index TOPOLOGY reports as the up primary of `partition`, if
/// exactly one node does.
fn reported_primary(
    client: &mut BrokerClient,
    cluster: &ClusterHandle,
    partition: usize,
) -> Option<usize> {
    let prefix = format!("backend {partition} ");
    let primaries: Vec<String> = client
        .topology()
        .unwrap()
        .iter()
        .filter(|l| l.starts_with(&prefix) && l.contains(" up ") && l.contains("role=primary"))
        .filter_map(|l| l.split_whitespace().nth(2).map(str::to_string))
        .collect();
    if primaries.len() != 1 {
        return None;
    }
    (0..cluster.node_count(partition)).find(|&n| cluster.node_addr(partition, n) == primaries[0])
}

/// Waits until `partition` has both nodes up, exactly one primary, and a
/// caught-up replica; returns the primary's node index.
fn wait_settled(client: &mut BrokerClient, cluster: &ClusterHandle, partition: usize) -> usize {
    let mut primary = 0;
    wait_until(&format!("partition {partition} to settle"), || {
        let both_up = cluster.node(partition, 0).is_some()
            && cluster.node(partition, 1).is_some()
            && nodes_up(client) == PARTITIONS * 2;
        if !both_up || !synced(cluster) {
            return false;
        }
        match reported_primary(client, cluster, partition) {
            Some(n) => {
                primary = n;
                true
            }
            None => false,
        }
    });
    primary
}

/// Brute-force oracle rows over the live set, sorted ascending.
fn oracle_rows(subs: &[&Subscription], events: &[Event]) -> Vec<Vec<SubId>> {
    events
        .iter()
        .map(|ev| {
            let mut row: Vec<SubId> = subs
                .iter()
                .filter(|s| s.matches(ev))
                .map(|s| s.id())
                .collect();
            row.sort_unstable();
            row
        })
        .collect()
}

/// Publishes a window through the router and asserts every merged row is
/// byte-identical to the oracle over `live` and never flagged partial.
fn assert_window_matches(
    client: &mut BrokerClient,
    wl: &apcm_workload::Workload,
    live: &[&Subscription],
    n_events: usize,
    context: &str,
) {
    let events = wl.events(n_events);
    let results = client.publish_batch_flagged(&events, &wl.schema).unwrap();
    assert_eq!(results.len(), events.len(), "{context}");
    let expect = oracle_rows(live, &events);
    let base = *results.keys().next().unwrap();
    for (seq, (row, partial)) in &results {
        let i = (seq - base) as usize;
        if *partial {
            let topology = client.topology().unwrap();
            let stats = client.stats().unwrap();
            panic!(
                "{context}: event {i} flagged partial\ntopology: {topology:#?}\nstats: {stats:#?}"
            );
        }
        assert_eq!(
            render_result(*seq, row),
            render_result(*seq, &expect[i]),
            "{context}: event {i}"
        );
    }
}

/// The acceptance drill: kill the primary of a partition mid-stream with a
/// caught-up replica — the router promotes, rows stay byte-identical to
/// the oracle with nothing partial, and no acked churn is lost across
/// kill → promote → rejoin (demote) → re-promote. Replication-stream
/// faults are injected along the way.
#[test]
fn failover_promotes_replica_and_loses_no_churn() {
    let _guard = lock();
    failpoint::reset();
    let wl = WorkloadSpec::new(120).seed(0xFA11).build();
    let dir = tmpdir("acceptance");
    let mut cluster = replicated_cluster(&wl.schema, &dir);
    let mut client = connect(&cluster.router_addr());
    wait_until("all nodes up", || nodes_up(&mut client) == PARTITIONS * 2);

    // TOPOLOGY carries the replication columns for every node, plus one
    // summary line per partition.
    let lines = client.topology().unwrap();
    assert_eq!(lines.len(), PARTITIONS * 3);
    for line in lines.iter().filter(|l| l.starts_with("backend ")) {
        assert!(line.contains("role="), "{line}");
        assert!(line.contains(" lag "), "{line}");
        assert!(line.contains(" seq "), "{line}");
    }
    assert_eq!(
        lines.iter().filter(|l| l.starts_with("summary ")).count(),
        PARTITIONS
    );

    // Baseline churn, then churn under injected replication-stream faults:
    // a dropped stream, then a torn frame. Replicas must heal by
    // reconnect + log-tail catch-up.
    for sub in &wl.subs[..60] {
        client.subscribe(sub, &wl.schema).unwrap();
    }
    failpoint::arm("repl.stream.send", FailAction::Error, Some(2));
    for sub in &wl.subs[60..80] {
        client.subscribe(sub, &wl.schema).unwrap();
    }
    failpoint::arm("repl.stream.send", FailAction::TornWrite(7), Some(2));
    for sub in &wl.subs[80..100] {
        client.subscribe(sub, &wl.schema).unwrap();
    }
    failpoint::reset();
    wait_until("replicas caught up after faults", || synced(&cluster));

    let live: Vec<&Subscription> = wl.subs[..100].iter().collect();
    assert_window_matches(&mut client, &wl, &live, 20, "healthy window");

    // Kill the primary of partition 0. The replica is caught up, so the
    // first churn or publish that trips over the dead socket promotes it.
    let victim = wait_settled(&mut client, &cluster, 0);
    let standby = 1 - victim;
    cluster.kill_node(0, victim);

    for sub in &wl.subs[..20] {
        client.unsubscribe(sub.id()).unwrap();
    }
    for sub in &wl.subs[100..] {
        client.subscribe(sub, &wl.schema).unwrap();
    }
    let live: Vec<&Subscription> = wl.subs[20..].iter().collect();
    assert_window_matches(&mut client, &wl, &live, 20, "window after failover");
    wait_until("standby promoted", || {
        reported_primary(&mut client, &cluster, 0) == Some(standby)
    });

    // The ex-primary rejoins with its original (primary) config; the
    // sweep demotes it into a follower of the promoted node and it pulls
    // the churn it missed.
    cluster.restart_node(0, victim).unwrap();
    wait_until("ex-primary demoted and caught up", || {
        cluster
            .node(0, victim)
            .is_some_and(|s| matches!(s.role(), Role::Replica { .. }))
            && synced(&cluster)
    });
    assert_eq!(wait_settled(&mut client, &cluster, 0), standby);

    // Re-promote the original node by killing the replacement.
    cluster.kill_node(0, standby);
    for sub in &wl.subs[20..40] {
        client.unsubscribe(sub.id()).unwrap();
    }
    let live: Vec<&Subscription> = wl.subs[40..].iter().collect();
    assert_window_matches(&mut client, &wl, &live, 20, "window after re-promotion");
    wait_until("original node re-promoted", || {
        reported_primary(&mut client, &cluster, 0) == Some(victim)
    });

    cluster.restart_node(0, standby).unwrap();
    wait_until("replacement rejoined as follower", || {
        cluster
            .node(0, standby)
            .is_some_and(|s| matches!(s.role(), Role::Replica { .. }))
            && synced(&cluster)
    });
    assert_eq!(wait_settled(&mut client, &cluster, 0), victim);
    assert_window_matches(&mut client, &wl, &live, 24, "final window");

    // Gauges are eventually consistent against the background sweep; the
    // monotonic counters below are not.
    wait_until("every node back in the router's table", || {
        let stats = client.stats().unwrap();
        stats["nodes_up"] == (PARTITIONS * 2) as u64 && stats["backends_up"] == PARTITIONS as u64
    });
    let stats = client.stats().unwrap();
    assert_eq!(stats["nodes"], (PARTITIONS * 2) as u64);
    assert!(stats["failovers"] >= 2, "failovers {}", stats["failovers"]);
    assert!(stats["promotions"] >= 2);
    assert!(stats["demotions"] >= 1);
    assert_eq!(stats["cluster_degraded"], 0);

    client.quit().unwrap();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A chained cluster: `partitions` partitions, each a replication chain
/// of `chain_len` nodes (node 0 the primary, each later node following
/// the previous) with separate persist directories under `dir`.
fn chained_cluster(
    schema: &apcm_bexpr::Schema,
    dir: &Path,
    partitions: usize,
    chain_len: usize,
) -> ClusterHandle {
    let chains = (0..partitions)
        .map(|p| {
            (0..chain_len)
                .map(|n| node_config(&dir.join(format!("p{p}-n{n}"))))
                .collect()
        })
        .collect();
    ClusterHandle::start_chained(schema.clone(), chains, router_config()).unwrap()
}

/// Whether every *running* node of `partition` has the same applied
/// sequence (dead nodes are skipped).
fn chain_synced(cluster: &ClusterHandle, partition: usize) -> bool {
    let seqs: Vec<u64> = (0..cluster.node_count(partition))
        .filter_map(|n| cluster.node(partition, n))
        .map(|s| s.current_seq())
        .collect();
    seqs.windows(2).all(|w| w[0] == w[1])
}

/// Waits until every node of `partition` is running and up in TOPOLOGY,
/// the chain is synced, and exactly one node answers as primary; returns
/// the primary's node index.
fn wait_chain_settled(
    client: &mut BrokerClient,
    cluster: &ClusterHandle,
    partition: usize,
) -> usize {
    let mut primary = 0;
    wait_until(&format!("partition {partition} chain to settle"), || {
        let nodes = cluster.node_count(partition);
        let all_running = (0..nodes).all(|n| cluster.node(partition, n).is_some());
        if !all_running || !chain_synced(cluster, partition) {
            return false;
        }
        let prefix = format!("backend {partition} ");
        let up = client
            .topology()
            .unwrap()
            .iter()
            .filter(|l| l.starts_with(&prefix) && l.contains(" up "))
            .count();
        if up != nodes {
            return false;
        }
        match reported_primary(client, cluster, partition) {
            Some(n) => {
                primary = n;
                true
            }
            None => false,
        }
    });
    primary
}

/// The follower-served-read staleness drill: a three-node chain serves
/// publish windows from its followers once they clear the churn-ack
/// floor, falls back to the primary the instant churn outruns them
/// (never returning stale rows), and rides out a follower killed
/// mid-window — every routed row stays byte-identical to the
/// single-process oracle throughout.
#[test]
fn follower_reads_stay_fresh_under_lag_and_kills() {
    let _guard = lock();
    failpoint::reset();
    let wl = WorkloadSpec::new(80).seed(0xF07A).build();
    let dir = tmpdir("follower-reads");
    let mut cluster = chained_cluster(&wl.schema, &dir, 1, 3);
    let mut client = connect(&cluster.router_addr());
    wait_until("all nodes up", || nodes_up(&mut client) == 3);

    // TOPOLOGY names every chain position and the per-follower lag/acked
    // columns.
    wait_until("chain roles reported", || {
        let lines = client.topology().unwrap();
        lines.iter().any(|l| l.contains("role=chain[1/2]"))
            && lines.iter().any(|l| l.contains("role=chain[2/2]"))
    });
    for line in client.topology().unwrap() {
        if line.starts_with("backend ") {
            assert!(line.contains(" acked "), "{line}");
            assert!(line.contains(" lag "), "{line}");
        }
    }

    for sub in &wl.subs[..60] {
        client.subscribe(sub, &wl.schema).unwrap();
    }
    wait_until("chain caught up", || chain_synced(&cluster, 0));
    let live: Vec<&Subscription> = wl.subs[..60].iter().collect();

    // Once the sweep certifies the followers (connected, past the
    // floor), windows route to them — and stay byte-identical.
    wait_until("a follower serves a window", || {
        assert_window_matches(&mut client, &wl, &live, 12, "follower-read window");
        client.stats().unwrap()["reads_follower_served"] > 0
    });

    // Lag the chain mid-window: stalled replication sends leave the
    // followers provably behind the churn-ack floor, so the seq-floor
    // guard must route those windows to the primary (fallback counter
    // moves) — rows still exact, stale followers never answer.
    let mut live: Vec<&Subscription> = wl.subs[..60].iter().collect();
    failpoint::arm("repl.stream.send", FailAction::Stall(60), Some(6));
    for (i, sub) in wl.subs[60..66].iter().enumerate() {
        client.subscribe(sub, &wl.schema).unwrap();
        live.push(sub);
        assert_window_matches(&mut client, &wl, &live, 8, &format!("lagged window {i}"));
    }
    failpoint::reset();
    assert!(
        client.stats().unwrap()["reads_floor_fallbacks"] > 0,
        "the floor guard never fired"
    );
    wait_until("chain heals after stalls", || chain_synced(&cluster, 0));

    // Kill the tail follower mid-stream: a window scattered to it rides
    // the error over to the primary (marked down, no failover), and the
    // surviving follower keeps serving reads.
    cluster.kill_node(0, 2);
    for i in 0..4 {
        assert_window_matches(
            &mut client,
            &wl,
            &live,
            10,
            &format!("window after kill {i}"),
        );
    }
    wait_until("dead follower marked down", || nodes_up(&mut client) == 2);
    let served = client.stats().unwrap()["reads_follower_served"];
    wait_until("surviving follower serves", || {
        assert_window_matches(&mut client, &wl, &live, 10, "window on surviving follower");
        client.stats().unwrap()["reads_follower_served"] > served
    });

    cluster.restart_node(0, 2).unwrap();
    wait_chain_settled(&mut client, &cluster, 0);
    assert_window_matches(&mut client, &wl, &live, 16, "final window");
    let stats = client.stats().unwrap();
    assert_eq!(stats["cluster_degraded"], 0);
    assert_eq!(stats["failovers"], 0);

    client.quit().unwrap();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The chain acceptance drill: two partitions, each a 3-deep replication
/// chain, under seeded churn. Kill a primary (quorum promotes the most
/// caught-up survivor), kill a mid-chain follower (the orphaned tail is
/// re-aimed at the active node), then fail partition 0 over a second
/// time — zero acked churn lost, every routed window byte-identical to
/// the oracle, nothing partial.
#[test]
fn chain_quorum_failover_drill_preserves_every_acked_churn_op() {
    let _guard = lock();
    failpoint::reset();
    let wl = WorkloadSpec::new(120).seed(0xC4A1).build();
    let dir = tmpdir("chain-quorum");
    let mut cluster = chained_cluster(&wl.schema, &dir, 2, 3);
    let mut client = connect(&cluster.router_addr());
    wait_until("all nodes up", || nodes_up(&mut client) == 6);

    let mut rng = StdRng::seed_from_u64(0xC4A1_C4A1);
    let mut live = vec![false; wl.subs.len()];
    macro_rules! churn_round {
        ($p_sub:expr, $p_unsub:expr) => {
            for (i, sub) in wl.subs.iter().enumerate() {
                if !live[i] && rng.gen_bool($p_sub) {
                    client.subscribe(sub, &wl.schema).unwrap();
                    live[i] = true;
                } else if live[i] && rng.gen_bool($p_unsub) {
                    client.unsubscribe(sub.id()).unwrap();
                    live[i] = false;
                }
            }
        };
    }
    macro_rules! check_window {
        ($n:expr, $context:expr) => {
            let live_subs: Vec<&Subscription> = wl
                .subs
                .iter()
                .enumerate()
                .filter(|(i, _)| live[*i])
                .map(|(_, s)| s)
                .collect();
            assert_window_matches(&mut client, &wl, &live_subs, $n, $context);
        };
    }

    for p in 0..2 {
        wait_chain_settled(&mut client, &cluster, p);
    }
    churn_round!(0.5, 0.0);
    check_window!(16, "baseline");

    // Kill partition 0's primary: quorum failover probes both standbys
    // and promotes the most caught-up one, re-aiming the other.
    let victim = wait_chain_settled(&mut client, &cluster, 0);
    cluster.kill_node(0, victim);
    churn_round!(0.1, 0.1);
    check_window!(16, "through partition 0 failover");
    let mut promoted = victim;
    wait_until("quorum promoted a survivor", || {
        match reported_primary(&mut client, &cluster, 0) {
            Some(n) if n != victim => {
                promoted = n;
                true
            }
            _ => false,
        }
    });

    // Kill partition 1's mid-chain follower: the tail that followed it
    // is orphaned until the sweep re-aims it at the active node; churn
    // keeps flowing the whole time.
    let p1_primary = wait_chain_settled(&mut client, &cluster, 1);
    let mid_chain = if p1_primary == 1 { 2 } else { 1 };
    cluster.kill_node(1, mid_chain);
    churn_round!(0.1, 0.1);
    check_window!(16, "through mid-chain kill");
    wait_until("orphaned tail re-aimed and caught up", || {
        chain_synced(&cluster, 1)
    });

    // Heal both, then settle: the ex-primary rejoins under the promoted
    // node (rewinding any unacked suffix in place), the mid-chain node
    // rejoins its chain.
    cluster.restart_node(0, victim).unwrap();
    cluster.restart_node(1, mid_chain).unwrap();
    for p in 0..2 {
        wait_chain_settled(&mut client, &cluster, p);
    }
    check_window!(20, "after heal");

    // Double failover: partition 0's replacement primary dies too. The
    // quorum picks again from the survivors (the returned ex-primary is
    // eligible — its history was reconciled when it rejoined).
    cluster.kill_node(0, promoted);
    churn_round!(0.1, 0.1);
    check_window!(16, "through double failover");
    wait_until(
        "second quorum promotion",
        || matches!(reported_primary(&mut client, &cluster, 0), Some(n) if n != promoted),
    );
    cluster.restart_node(0, promoted).unwrap();
    for p in 0..2 {
        wait_chain_settled(&mut client, &cluster, p);
    }

    // Zero acked churn lost: the final windows over the full model are
    // byte-identical to the oracle.
    check_window!(40, "final window");
    wait_until("every node back in the router's table", || {
        client.stats().unwrap()["nodes_up"] == 6
    });
    let stats = client.stats().unwrap();
    assert_eq!(stats["cluster_degraded"], 0);
    assert!(stats["failovers"] >= 2, "failovers {}", stats["failovers"]);
    assert!(stats["promotions"] >= 2);
    assert!(stats["demotions"] >= 1);

    client.quit().unwrap();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded randomized chaos drill: rounds of churn interleaved with node
/// kills (primaries and standbys), restarts, and the promotions they
/// force. Every acknowledged churn op must survive to the end; every
/// window's rows must be byte-identical to the single-process oracle and
/// never flagged partial.
#[test]
fn chaos_drill_preserves_every_acked_churn_op() {
    let _guard = lock();
    failpoint::reset();
    const ROUNDS: usize = 8;
    let wl = WorkloadSpec::new(140).seed(0xC405).build();
    let dir = tmpdir("chaos");
    let mut cluster = replicated_cluster(&wl.schema, &dir);
    let mut client = connect(&cluster.router_addr());
    wait_until("all nodes up", || nodes_up(&mut client) == PARTITIONS * 2);

    let mut rng = StdRng::seed_from_u64(0xC405_C405);
    let mut live = vec![false; wl.subs.len()];
    // Partition → node index killed this round, to restart next round.
    let mut dead: [Option<usize>; PARTITIONS] = [None; PARTITIONS];

    for round in 0..ROUNDS {
        // Heal last round's casualty, then let every partition settle
        // (rejoins demoted, replicas caught up, exactly one primary).
        for (p, slot) in dead.iter_mut().enumerate() {
            if let Some(node) = slot.take() {
                cluster.restart_node(p, node).unwrap();
            }
        }
        for p in 0..PARTITIONS {
            wait_settled(&mut client, &cluster, p);
        }

        // Random churn through the router; only acked ops flip the model.
        for (i, sub) in wl.subs.iter().enumerate() {
            if !live[i] && rng.gen_bool(0.4) {
                client.subscribe(sub, &wl.schema).unwrap();
                live[i] = true;
            } else if live[i] && rng.gen_bool(0.3) {
                client.unsubscribe(sub.id()).unwrap();
                live[i] = false;
            }
        }

        // Kill with a caught-up standby: alternate target partition, and
        // alternate between the current primary (forces a promotion) and
        // the standby (forces nothing but a lost follower).
        let target = round % PARTITIONS;
        let primary = wait_settled(&mut client, &cluster, target);
        let victim = if (round / 2) % 2 == 0 {
            primary
        } else {
            1 - primary
        };
        cluster.kill_node(target, victim);
        dead[target] = Some(victim);

        // Churn and match straight through the flip window.
        for (i, sub) in wl.subs.iter().enumerate() {
            if !live[i] && rng.gen_bool(0.1) {
                client.subscribe(sub, &wl.schema).unwrap();
                live[i] = true;
            } else if live[i] && rng.gen_bool(0.1) {
                client.unsubscribe(sub.id()).unwrap();
                live[i] = false;
            }
        }
        let live_subs: Vec<&Subscription> = wl
            .subs
            .iter()
            .enumerate()
            .filter(|(i, _)| live[*i])
            .map(|(_, s)| s)
            .collect();
        assert_window_matches(
            &mut client,
            &wl,
            &live_subs,
            16 + round,
            &format!("round {round}"),
        );
    }

    // Final heal: everything back up, settled, and one last full check of
    // every acked churn op against the oracle.
    for (p, slot) in dead.iter_mut().enumerate() {
        if let Some(node) = slot.take() {
            cluster.restart_node(p, node).unwrap();
        }
    }
    for p in 0..PARTITIONS {
        wait_settled(&mut client, &cluster, p);
    }
    let live_subs: Vec<&Subscription> = wl
        .subs
        .iter()
        .enumerate()
        .filter(|(i, _)| live[*i])
        .map(|(_, s)| s)
        .collect();
    assert!(!live_subs.is_empty());
    assert_window_matches(&mut client, &wl, &live_subs, 40, "final window");

    wait_until("every node back in the router's table", || {
        client.stats().unwrap()["nodes_up"] == (PARTITIONS * 2) as u64
    });
    let stats = client.stats().unwrap();
    assert_eq!(stats["cluster_degraded"], 0);
    assert!(stats["failovers"] >= 3, "failovers {}", stats["failovers"]);
    assert!(stats["promotions"] >= 3);
    assert!(stats["demotions"] >= 1);

    client.quit().unwrap();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
