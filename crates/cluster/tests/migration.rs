//! Elastic resharding drills: live partition migration behind the router.
//!
//! * scale-out (`RESHARD ADD`) onto a fresh backend pair while a
//!   background publisher hammers windows and the foreground churns:
//!   nothing partial, the final rows are byte-identical to a
//!   single-process oracle, and the moved share is bounded by the ring's
//!   2/N guarantee;
//! * scale-in (`RESHARD REMOVE`) drains a partition onto the survivors
//!   and drops it from the table with the same guarantees;
//! * a seeded chaos drill interleaves migrations with kills of the
//!   current leg's donor or puller primary — the controller re-aims the
//!   pull at promoted standbys and every acked churn op survives.
//!
//! All tests serialize on [`lock`]: clusters are heavyweight and the
//! failpoint registry (unused here, but shared) is process-global.

use apcm_bexpr::{Event, SubId, Subscription};
use apcm_cluster::{ClusterHandle, RouterConfig};
use apcm_server::client::ConnectOptions;
use apcm_server::protocol::render_result;
use apcm_server::{BrokerClient, EngineChoice, PersistConfig, Ring, ServerConfig};
use apcm_workload::WorkloadSpec;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apcm-reshard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn node_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        shards: 2,
        engine: EngineChoice::Apcm,
        window: 32,
        flush_interval: Duration::from_millis(2),
        maintenance_interval: Duration::from_millis(50),
        repl_ack_every: 2,
        persist: Some(PersistConfig {
            snapshot_interval: None,
            retry_backoff: Duration::from_millis(20),
            ..PersistConfig::new(dir)
        }),
        ..ServerConfig::default()
    }
}

fn router_config() -> RouterConfig {
    RouterConfig {
        health_interval: Duration::from_millis(25),
        probe_timeout: Duration::from_millis(500),
        connect: ConnectOptions {
            connect_timeout: Some(Duration::from_millis(500)),
            read_timeout: Some(Duration::from_secs(10)),
            attempts: 1,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..ConnectOptions::default()
        },
        ..RouterConfig::default()
    }
}

/// A replicated cluster of `n` partitions with persist dirs under `dir`.
fn replicated_cluster(schema: &apcm_bexpr::Schema, dir: &Path, n: usize) -> ClusterHandle {
    let pairs = (0..n)
        .map(|i| {
            (
                node_config(&dir.join(format!("p{i}-primary"))),
                Some(node_config(&dir.join(format!("p{i}-replica")))),
            )
        })
        .collect();
    ClusterHandle::start_replicated(schema.clone(), pairs, router_config()).unwrap()
}

fn connect(addr: &str) -> BrokerClient {
    let mut client = BrokerClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Churn issued across a failover or ownership flip must ride the
    // retry loop (`-ERR backend ... unavailable` / `-ERR not owner`).
    client.set_churn_retry(120, Duration::from_millis(25));
    client
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(15));
    }
    panic!("timed out waiting for {what}");
}

/// Brute-force oracle rows over the live set, sorted ascending.
fn oracle_rows(subs: &[&Subscription], events: &[Event]) -> Vec<Vec<SubId>> {
    events
        .iter()
        .map(|ev| {
            let mut row: Vec<SubId> = subs
                .iter()
                .filter(|s| s.matches(ev))
                .map(|s| s.id())
                .collect();
            row.sort_unstable();
            row
        })
        .collect()
}

/// Publishes a window through the router and asserts every merged row is
/// byte-identical to the oracle over `live` and never flagged partial.
fn assert_window_matches(
    client: &mut BrokerClient,
    wl: &apcm_workload::Workload,
    live: &[&Subscription],
    n_events: usize,
    context: &str,
) {
    let events = wl.events(n_events);
    let results = client.publish_batch_flagged(&events, &wl.schema).unwrap();
    assert_eq!(results.len(), events.len(), "{context}");
    let expect = oracle_rows(live, &events);
    let base = *results.keys().next().unwrap();
    for (seq, (row, partial)) in &results {
        let i = (seq - base) as usize;
        if *partial {
            let topology = client.topology().unwrap();
            panic!("{context}: event {i} flagged partial\ntopology: {topology:#?}");
        }
        assert_eq!(
            render_result(*seq, row),
            render_result(*seq, &expect[i]),
            "{context}: event {i}"
        );
    }
}

/// The up-and-primary node index of `partition` per `TOPOLOGY`, if
/// exactly one node qualifies.
fn reported_primary(
    client: &mut BrokerClient,
    cluster: &ClusterHandle,
    partition: usize,
) -> Option<usize> {
    let prefix = format!("backend {partition} ");
    let primaries: Vec<String> = client
        .topology()
        .unwrap()
        .iter()
        .filter(|l| l.starts_with(&prefix) && l.contains(" up ") && l.contains("role=primary"))
        .filter_map(|l| l.split_whitespace().nth(2).map(str::to_string))
        .collect();
    if primaries.len() != 1 {
        return None;
    }
    (0..cluster.node_count(partition)).find(|&n| cluster.node_addr(partition, n) == primaries[0])
}

/// Waits until `partition` has both nodes running and up, exactly one
/// primary, and a caught-up replica; returns the primary's node index.
fn wait_settled(client: &mut BrokerClient, cluster: &ClusterHandle, partition: usize) -> usize {
    let mut primary = 0;
    wait_until(&format!("partition {partition} to settle"), || {
        let synced = match (cluster.node(partition, 0), cluster.node(partition, 1)) {
            (Some(a), Some(b)) => a.current_seq() == b.current_seq(),
            _ => false,
        };
        if !synced {
            return false;
        }
        match reported_primary(client, cluster, partition) {
            Some(n) => {
                primary = n;
                true
            }
            None => false,
        }
    });
    primary
}

/// `(donor, puller)` of the current leg, from the router's status line
/// (`+OK reshard add 2 leg 1/2 donor 0 puller 2 phase catch-up`).
fn current_leg(status: &str) -> Option<(usize, usize)> {
    let mut tokens = status.split_whitespace();
    let mut donor = None;
    let mut puller = None;
    while let Some(t) = tokens.next() {
        match t {
            "donor" => donor = tokens.next().and_then(|v| v.parse().ok()),
            "puller" => puller = tokens.next().and_then(|v| v.parse().ok()),
            _ => {}
        }
    }
    donor.zip(puller)
}

/// Scale-out 2 → 3 under concurrent publishing and foreground churn.
#[test]
fn scale_out_moves_bounded_share_and_loses_no_churn() {
    let _guard = lock();
    let wl = WorkloadSpec::new(140).seed(0xE1A5).build();
    let dir = tmpdir("scale-out");
    let mut cluster = replicated_cluster(&wl.schema, &dir, 2);
    let mut client = connect(&cluster.router_addr());

    let mut live = vec![false; wl.subs.len()];
    for (i, sub) in wl.subs.iter().enumerate().take(100) {
        client.subscribe(sub, &wl.schema).unwrap();
        live[i] = true;
    }

    // Background publisher: windows must keep flowing, never partial,
    // through every phase of the migration. Row contents are asserted by
    // the foreground oracle checks; this thread pins availability.
    let stop = AtomicBool::new(false);
    let addr = cluster.router_addr();
    std::thread::scope(|scope| {
        // An assert firing mid-scope must still release the publisher, or
        // the scope join would hang forever and swallow the panic.
        let _stop_on_unwind = StopOnDrop(&stop);
        let publisher = scope.spawn(|| {
            let mut pub_client = connect(&addr);
            let mut windows = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let events = wl.events(8);
                let results = pub_client
                    .publish_batch_flagged(&events, &wl.schema)
                    .unwrap();
                for (seq, (_, partial)) in &results {
                    assert!(
                        !partial,
                        "window at seq {seq} flagged partial mid-migration"
                    );
                }
                windows += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            windows
        });

        let primary = node_config(&dir.join("p2-primary"));
        let replica = node_config(&dir.join("p2-replica"));
        let slot = cluster.add_backend_pair(primary, Some(replica)).unwrap();
        assert_eq!(slot, 2);
        let ack = client
            .reshard_add(cluster.node_addr(slot, 0), Some(cluster.node_addr(slot, 1)))
            .unwrap();
        assert!(ack.contains("partition 2"), "{ack}");

        // Churn straight through the migration.
        let mut rng = StdRng::seed_from_u64(0xE1A5_0001);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let status = client.reshard_status().unwrap();
            if status == "OK reshard idle" {
                break;
            }
            assert!(Instant::now() < deadline, "migration stuck: {status}");
            for (i, sub) in wl.subs.iter().enumerate() {
                if !live[i] && rng.gen_bool(0.02) {
                    client.subscribe(sub, &wl.schema).unwrap();
                    live[i] = true;
                } else if live[i] && rng.gen_bool(0.02) {
                    client.unsubscribe(sub.id()).unwrap();
                    live[i] = false;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        stop.store(true, Ordering::SeqCst);
        let windows = publisher.join().expect("publisher thread");
        assert!(windows > 0, "publisher never got a window through");
    });

    // The ring contract bounds the moved share: ids re-placed by the
    // 2 → 3 transition all land on the new member, and over this
    // workload's id set the fraction respects the ≤ 2/(n+1) vnode bound.
    let old_ring = Ring::new(&[0, 1]);
    let new_ring = Ring::new(&[0, 1, 2]);
    let ids: Vec<SubId> = wl.subs.iter().map(|s| s.id()).collect();
    let moved: Vec<SubId> = ids
        .iter()
        .copied()
        .filter(|&id| old_ring.route(id) != new_ring.route(id))
        .collect();
    assert!(!moved.is_empty(), "a 2→3 reshard must move something");
    for &id in &moved {
        assert_eq!(new_ring.route(id), 2, "moved ids land on the joiner only");
    }
    assert!(
        moved.len() * 3 <= ids.len() * 2,
        "moved {} of {} ids: beyond the 2/N bound",
        moved.len(),
        ids.len()
    );

    // Every acked churn op survived: merged rows are byte-identical to
    // the oracle over the model's live set, with the joiner serving.
    let live_subs: Vec<&Subscription> = wl
        .subs
        .iter()
        .enumerate()
        .filter(|(i, _)| live[*i])
        .map(|(_, s)| s)
        .collect();
    assert_window_matches(&mut client, &wl, &live_subs, 40, "post-scale-out window");

    let stats = client.stats().unwrap();
    assert_eq!(stats["backends"], 3);
    assert_eq!(stats["reshards_started"], 1);
    assert_eq!(stats["reshards_completed"], 1);
    assert!(stats["reshard_flips"] >= 1);
    assert_eq!(stats["cluster_degraded"], 0);
    assert_eq!(stats["nodes"], 6);

    client.quit().unwrap();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scale-in 3 → 2: the drained partition leaves the table and its share
/// survives on the survivors.
#[test]
fn scale_in_drains_partition_and_loses_no_churn() {
    let _guard = lock();
    let wl = WorkloadSpec::new(120).seed(0xE1A6).build();
    let dir = tmpdir("scale-in");
    let cluster = replicated_cluster(&wl.schema, &dir, 3);
    let mut client = connect(&cluster.router_addr());

    let mut live = vec![false; wl.subs.len()];
    for (i, sub) in wl.subs.iter().enumerate().take(90) {
        client.subscribe(sub, &wl.schema).unwrap();
        live[i] = true;
    }
    // The leaving partition must actually hold some of these.
    let ring = Ring::new(&[0, 1, 2]);
    assert!(wl.subs[..90].iter().any(|s| ring.route(s.id()) == 2));

    let ack = client.reshard_remove(2).unwrap();
    assert!(ack.contains("partition 2"), "{ack}");

    let mut rng = StdRng::seed_from_u64(0xE1A6_0001);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = client.reshard_status().unwrap();
        if status == "OK reshard idle" {
            break;
        }
        assert!(Instant::now() < deadline, "migration stuck: {status}");
        for (i, sub) in wl.subs.iter().enumerate() {
            if !live[i] && rng.gen_bool(0.02) {
                client.subscribe(sub, &wl.schema).unwrap();
                live[i] = true;
            } else if live[i] && rng.gen_bool(0.02) {
                client.unsubscribe(sub.id()).unwrap();
                live[i] = false;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let live_subs: Vec<&Subscription> = wl
        .subs
        .iter()
        .enumerate()
        .filter(|(i, _)| live[*i])
        .map(|(_, s)| s)
        .collect();
    assert_window_matches(&mut client, &wl, &live_subs, 40, "post-scale-in window");

    let stats = client.stats().unwrap();
    assert_eq!(stats["backends"], 2);
    assert_eq!(stats["reshards_completed"], 1);
    assert_eq!(stats["cluster_degraded"], 0);
    let topology = client.topology().unwrap();
    assert!(
        topology.iter().all(|l| !l.starts_with("backend 2 ")),
        "drained partition still in topology: {topology:#?}"
    );

    client.quit().unwrap();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded chaos drill: alternating scale-out and scale-in migrations,
/// each with the current leg's donor or puller primary killed mid-flight.
/// The sweep promotes the standby, the controller re-aims the pull, and
/// every acked churn op must survive to a byte-identical oracle row.
#[test]
fn migration_chaos_survives_donor_and_puller_kills() {
    let _guard = lock();
    const ROUNDS: usize = 4;
    let wl = WorkloadSpec::new(120).seed(0xC4A0).build();
    let dir = tmpdir("chaos");
    let mut cluster = replicated_cluster(&wl.schema, &dir, 2);
    let mut client = connect(&cluster.router_addr());
    let mut rng = StdRng::seed_from_u64(0xC4A0_C4A0);

    let mut live = vec![false; wl.subs.len()];
    for (i, sub) in wl.subs.iter().enumerate().take(80) {
        client.subscribe(sub, &wl.schema).unwrap();
        live[i] = true;
    }

    // Member index of the partition added by the most recent scale-out
    // (ring member ids are never reused, so this climbs: 2, 3, ...).
    let mut extra: Option<usize> = None;

    for round in 0..ROUNDS {
        let context = format!("round {round}");
        match extra {
            None => {
                let primary = node_config(&dir.join(format!("r{round}-primary")));
                let replica = node_config(&dir.join(format!("r{round}-replica")));
                let slot = cluster.add_backend_pair(primary, Some(replica)).unwrap();
                client
                    .reshard_add(cluster.node_addr(slot, 0), Some(cluster.node_addr(slot, 1)))
                    .unwrap();
                extra = Some(slot);
            }
            Some(slot) => {
                client.reshard_remove(slot as u32).unwrap();
                extra = None;
            }
        }

        // Let the migration get going, then kill the current leg's donor
        // or puller primary (seeded choice) mid-flight.
        std::thread::sleep(Duration::from_millis(rng.gen_range(30..120)));
        let mut killed: Option<(usize, usize)> = None;
        let status = client.reshard_status().unwrap();
        if let Some((donor, puller)) = current_leg(&status) {
            let victim_partition = if rng.gen_bool(0.5) { donor } else { puller };
            if let Some(node) = reported_primary(&mut client, &cluster, victim_partition) {
                cluster.kill_node(victim_partition, node);
                killed = Some((victim_partition, node));
            }
        }
        eprintln!("{context}: status at kill: {status:?}, killed {killed:?}");

        // Churn straight through the healing migration.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let status = client.reshard_status().unwrap();
            if status == "OK reshard idle" {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{context}: migration stuck: {status} (killed {killed:?})"
            );
            for (i, sub) in wl.subs.iter().enumerate() {
                if !live[i] && rng.gen_bool(0.02) {
                    client.subscribe(sub, &wl.schema).unwrap();
                    live[i] = true;
                } else if live[i] && rng.gen_bool(0.02) {
                    if let Err(e) = client.unsubscribe(sub.id()) {
                        let status = client.reshard_status();
                        let topology = client.topology();
                        panic!(
                            "{context}: UNSUB {} failed: {e}\nkilled {killed:?}\n\
                             status {status:?}\ntopology {topology:#?}",
                            sub.id().0
                        );
                    }
                    live[i] = false;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        // Heal the casualty. If the migration just removed its partition
        // from the cluster, the restart only brings the detached server
        // back for bookkeeping — the router no longer probes it, so there
        // is nothing to settle.
        if let Some((partition, node)) = killed.take() {
            cluster.restart_node(partition, node).unwrap();
            if member_in_topology(&mut client, partition) {
                wait_settled(&mut client, &cluster, partition);
            }
        }

        let live_subs: Vec<&Subscription> = wl
            .subs
            .iter()
            .enumerate()
            .filter(|(i, _)| live[*i])
            .map(|(_, s)| s)
            .collect();
        assert_window_matches(&mut client, &wl, &live_subs, 16 + round, &context);
        let stats = client.stats().unwrap();
        assert_eq!(stats["reshards_completed"], (round + 1) as u64, "{context}");
        assert_eq!(stats["cluster_degraded"], 0, "{context}");
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats["backends"], 2);
    assert_eq!(stats["reshards_started"], ROUNDS as u64);
    assert!(stats["reshard_flips"] >= ROUNDS as u64);

    client.quit().unwrap();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sets the publisher stop flag on drop, so a panicking test body cannot
/// leave the background publisher spinning inside `thread::scope`.
struct StopOnDrop<'a>(&'a AtomicBool);

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// Whether `TOPOLOGY` still lists partition `member`.
fn member_in_topology(client: &mut BrokerClient, member: usize) -> bool {
    let prefix = format!("backend {member} ");
    client
        .topology()
        .unwrap()
        .iter()
        .any(|l| l.starts_with(&prefix))
}
