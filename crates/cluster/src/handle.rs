//! In-process cluster: N backend partitions (each a primary server plus
//! an optional replication chain of followers) fronted by a router, all
//! on loopback ephemeral ports. The harness for integration tests,
//! failure injection (`kill_node` / `restart_node`), and benchmarks.

use apcm_bexpr::Schema;
use apcm_server::{Server, ServerConfig};

use crate::membership::BackendSpec;
use crate::router::{Router, RouterConfig};

struct NodeSlot {
    /// Bound address, pinned at first start so a restart rebinds the same
    /// port the router's membership table knows.
    addr: String,
    config: ServerConfig,
    server: Option<Server>,
}

impl NodeSlot {
    fn start(schema: &Schema, config: ServerConfig) -> std::io::Result<Self> {
        let server = Server::start(schema.clone(), config.clone(), "127.0.0.1:0")?;
        Ok(Self {
            addr: server.local_addr().to_string(),
            config,
            server: Some(server),
        })
    }
}

struct PartitionSlot {
    nodes: Vec<NodeSlot>,
}

pub struct ClusterHandle {
    schema: Schema,
    partitions: Vec<PartitionSlot>,
    router: Option<Router>,
}

impl ClusterHandle {
    /// Starts one backend server per config (ephemeral loopback ports) and
    /// a router fronting all of them. Backend order is partition order.
    pub fn start(
        schema: Schema,
        backend_configs: Vec<ServerConfig>,
        router_config: RouterConfig,
    ) -> std::io::Result<Self> {
        Self::start_replicated(
            schema,
            backend_configs.into_iter().map(|c| (c, None)).collect(),
            router_config,
        )
    }

    /// Starts one partition per `(primary, replica)` config pair — the
    /// two-node special case of [`Self::start_chained`].
    pub fn start_replicated(
        schema: Schema,
        partition_configs: Vec<(ServerConfig, Option<ServerConfig>)>,
        router_config: RouterConfig,
    ) -> std::io::Result<Self> {
        Self::start_chained(
            schema,
            partition_configs
                .into_iter()
                .map(|(primary, replica)| {
                    let mut chain = vec![primary];
                    chain.extend(replica);
                    chain
                })
                .collect(),
            router_config,
        )
    }

    /// Starts one partition per config chain: element 0 is the primary,
    /// each later element a follower whose `replica_of` is pointed at the
    /// *previous* element — replication hops node to node down the chain
    /// rather than fanning every follower off the primary (all nodes need
    /// distinct persist dirs). Each follower bootstraps over `REPLICATE`
    /// as soon as it starts. A killed node restarted via
    /// [`Self::restart_node`] comes back with its original config — the
    /// router's sweep demotes/re-aims it onto whichever node is active by
    /// then, so restarted chains may collapse toward primary fan-out.
    pub fn start_chained(
        schema: Schema,
        partition_configs: Vec<Vec<ServerConfig>>,
        router_config: RouterConfig,
    ) -> std::io::Result<Self> {
        if partition_configs.is_empty() || partition_configs.iter().any(Vec::is_empty) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a cluster needs at least one backend per partition",
            ));
        }
        let mut partitions = Vec::with_capacity(partition_configs.len());
        for chain in partition_configs {
            let mut nodes: Vec<NodeSlot> = Vec::with_capacity(chain.len());
            for mut config in chain {
                if let Some(upstream) = nodes.last() {
                    config.replica_of = Some(upstream.addr.clone());
                }
                nodes.push(NodeSlot::start(&schema, config)?);
            }
            partitions.push(PartitionSlot { nodes });
        }
        let specs: Vec<BackendSpec> = partitions
            .iter()
            .map(|p| BackendSpec {
                primary: p.nodes[0].addr.clone(),
                followers: p.nodes[1..].iter().map(|n| n.addr.clone()).collect(),
            })
            .collect();
        let router =
            Router::start_replicated(schema.clone(), &specs, router_config, "127.0.0.1:0")?;
        Ok(Self {
            schema,
            partitions,
            router: Some(router),
        })
    }

    pub fn router(&self) -> &Router {
        self.router.as_ref().expect("router is running")
    }

    /// Starts a fresh backend pair (primary plus optional replica) on
    /// ephemeral ports *without* telling the router — the scale-out drill
    /// for elastic resharding: the caller hands the returned primary
    /// address to `RESHARD ADD`, which registers the partition and starts
    /// migrating its ring share onto it. The new slot joins the handle's
    /// table, so `kill_node`/`restart_node` work on it like any other.
    /// Returns the new partition slot's index in this handle.
    pub fn add_backend_pair(
        &mut self,
        primary_config: ServerConfig,
        replica_config: Option<ServerConfig>,
    ) -> std::io::Result<usize> {
        let mut chain = vec![primary_config];
        chain.extend(replica_config);
        self.add_backend_chain(chain)
    }

    /// Chain-shaped [`Self::add_backend_pair`]: element 0 is the primary,
    /// each later config follows the previous element, as in
    /// [`Self::start_chained`].
    pub fn add_backend_chain(&mut self, chain: Vec<ServerConfig>) -> std::io::Result<usize> {
        if chain.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a partition needs at least one node",
            ));
        }
        let mut nodes: Vec<NodeSlot> = Vec::with_capacity(chain.len());
        for mut config in chain {
            if let Some(upstream) = nodes.last() {
                config.replica_of = Some(upstream.addr.clone());
            }
            nodes.push(NodeSlot::start(&self.schema, config)?);
        }
        self.partitions.push(PartitionSlot { nodes });
        Ok(self.partitions.len() - 1)
    }

    /// The router's client-facing address.
    pub fn router_addr(&self) -> String {
        self.router().local_addr().to_string()
    }

    pub fn backend_count(&self) -> usize {
        self.partitions.len()
    }

    /// Nodes in one partition (1 standalone, 1 + chain length otherwise).
    pub fn node_count(&self, partition: usize) -> usize {
        self.partitions[partition].nodes.len()
    }

    /// Address of a partition's primary-designate (node 0).
    pub fn backend_addr(&self, index: usize) -> &str {
        self.node_addr(index, 0)
    }

    pub fn node_addr(&self, partition: usize, node: usize) -> &str {
        &self.partitions[partition].nodes[node].addr
    }

    /// The partition's primary-designate server, if currently running.
    pub fn backend(&self, index: usize) -> Option<&Server> {
        self.node(index, 0)
    }

    /// A specific node's server, if currently running.
    pub fn node(&self, partition: usize, node: usize) -> Option<&Server> {
        self.partitions[partition].nodes[node].server.as_ref()
    }

    /// Simulates a crash of a partition's primary-designate (node 0).
    pub fn kill_backend(&mut self, index: usize) {
        self.kill_node(index, 0);
    }

    /// Simulates a crash: the node's sockets close and its threads join,
    /// but nothing is flushed — on-disk state is whatever the write path
    /// had produced (see `Server::abort`). The router notices on its next
    /// probe or publish and, when the partition has a caught-up standby,
    /// promotes it.
    pub fn kill_node(&mut self, partition: usize, node: usize) {
        if let Some(server) = self.partitions[partition].nodes[node].server.take() {
            server.abort();
        }
    }

    /// Restarts a partition's killed primary-designate (node 0).
    pub fn restart_backend(&mut self, index: usize) -> std::io::Result<()> {
        self.restart_node(index, 0)
    }

    /// Restarts a killed node on its original port with its original
    /// config; with persistence configured, recovery replays the snapshot
    /// and churn log before the listener opens. The router's health sweep
    /// reconnects it after its backoff delay and reconciles its role
    /// (an ex-primary rejoining a failed-over partition is demoted to a
    /// follower of the current active node).
    pub fn restart_node(&mut self, partition: usize, node: usize) -> std::io::Result<()> {
        let slot = &mut self.partitions[partition].nodes[node];
        if slot.server.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "node is already running",
            ));
        }
        slot.server = Some(Server::start(
            self.schema.clone(),
            slot.config.clone(),
            &slot.addr,
        )?);
        Ok(())
    }

    /// Stops the router, then every node; returns the router's final
    /// rendered stats.
    pub fn shutdown(mut self) -> String {
        let rendered = self.router.take().map(Router::shutdown).unwrap_or_default();
        for partition in &mut self.partitions {
            for slot in &mut partition.nodes {
                if let Some(server) = slot.server.take() {
                    let _ = server.shutdown();
                }
            }
        }
        rendered
    }
}
