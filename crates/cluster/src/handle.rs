//! In-process cluster: N backend shard servers plus a front router, all on
//! loopback ephemeral ports. The harness for integration tests, failure
//! injection (`kill_backend` / `restart_backend`), and benchmarks.

use apcm_bexpr::Schema;
use apcm_server::{Server, ServerConfig};

use crate::router::{Router, RouterConfig};

struct BackendSlot {
    /// Bound address, pinned at first start so a restart rebinds the same
    /// port the router's membership table knows.
    addr: String,
    config: ServerConfig,
    server: Option<Server>,
}

pub struct ClusterHandle {
    schema: Schema,
    backends: Vec<BackendSlot>,
    router: Option<Router>,
}

impl ClusterHandle {
    /// Starts one backend server per config (ephemeral loopback ports) and
    /// a router fronting all of them. Backend order is partition order.
    pub fn start(
        schema: Schema,
        backend_configs: Vec<ServerConfig>,
        router_config: RouterConfig,
    ) -> std::io::Result<Self> {
        if backend_configs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a cluster needs at least one backend",
            ));
        }
        let mut backends = Vec::with_capacity(backend_configs.len());
        for config in backend_configs {
            let server = Server::start(schema.clone(), config.clone(), "127.0.0.1:0")?;
            backends.push(BackendSlot {
                addr: server.local_addr().to_string(),
                config,
                server: Some(server),
            });
        }
        let addrs: Vec<String> = backends.iter().map(|b| b.addr.clone()).collect();
        let router = Router::start(schema.clone(), &addrs, router_config, "127.0.0.1:0")?;
        Ok(Self {
            schema,
            backends,
            router: Some(router),
        })
    }

    pub fn router(&self) -> &Router {
        self.router.as_ref().expect("router is running")
    }

    /// The router's client-facing address.
    pub fn router_addr(&self) -> String {
        self.router().local_addr().to_string()
    }

    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    pub fn backend_addr(&self, index: usize) -> &str {
        &self.backends[index].addr
    }

    /// The backend server, if it is currently running.
    pub fn backend(&self, index: usize) -> Option<&Server> {
        self.backends[index].server.as_ref()
    }

    /// Simulates a crash: the backend's sockets close and its threads
    /// join, but nothing is flushed — on-disk state is whatever the write
    /// path had produced (see `Server::abort`). The router notices on its
    /// next probe or publish.
    pub fn kill_backend(&mut self, index: usize) {
        if let Some(server) = self.backends[index].server.take() {
            server.abort();
        }
    }

    /// Restarts a killed backend on its original port with its original
    /// config; with persistence configured, recovery replays the snapshot
    /// and churn log before the listener opens. The router's health sweep
    /// reconnects it after its backoff delay.
    pub fn restart_backend(&mut self, index: usize) -> std::io::Result<()> {
        let slot = &mut self.backends[index];
        if slot.server.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "backend is already running",
            ));
        }
        slot.server = Some(Server::start(
            self.schema.clone(),
            slot.config.clone(),
            &slot.addr,
        )?);
        Ok(())
    }

    /// Stops the router, then every backend; returns the router's final
    /// rendered stats.
    pub fn shutdown(mut self) -> String {
        let rendered = self.router.take().map(Router::shutdown).unwrap_or_default();
        for slot in &mut self.backends {
            if let Some(server) = slot.server.take() {
                let _ = server.shutdown();
            }
        }
        rendered
    }
}
