//! The routing front broker.
//!
//! Speaks the same newline text protocol as `apcm-server` to clients but
//! owns no subscriptions itself:
//!
//! * `SUB`/`UNSUB`/`CLAIM` are routed to exactly one backend by the
//!   shared consistent-hash ring (`apcm_server::Ring`) placement of the
//!   id — or, mid-migration, by the owning leg's phase (donor until the
//!   flip, puller after, with a best-effort double-write in between);
//! * `PUB`/`BATCH` windows are fanned to every live backend on scoped
//!   threads, and the returned rows are merged (concatenate, sort,
//!   deduplicate — ids partition across backends, so duplicates only
//!   appear if a backend was restored from a stale snapshot);
//! * a window matched while one or more backends were down is still
//!   served from the surviving partitions, with the `RESULT` rows flagged
//!   `partial` and `cluster_degraded` counted;
//! * `TOPOLOGY` reports the membership table; `STATS` reports router
//!   counters; everything else (`PING`, `QUIT`, `SNAPSHOT`) behaves as a
//!   client of a standalone server would expect.
//!
//! Threading mirrors the server broker's threaded model: an accept
//! thread (blocked on an `apcm-netio` poller rather than sleep-polling,
//! with an eventfd waker for instant shutdown), a reader plus writer
//! thread per client connection, and a health thread running the
//! membership sweep. Scatter-gather runs on the publishing connection's
//! reader thread with one scoped thread per live backend.

use apcm_bexpr::{Event, Schema, SubId};
use apcm_encoding::{FixedBitSet, SummarySpace};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use apcm_netio::{Interest, Mode, PollEvent, Poller, Waker};
use apcm_server::client::ConnectOptions;
use apcm_server::protocol::{self, Request};
use apcm_server::{read_capped_line, LineOutcome};

use crate::membership::{BackendSpec, FollowerRead, Membership, Partition};
use crate::migration::{phase, MigrationController};
use crate::stats::ClusterStats;

/// Router tuning. The connection-facing knobs mirror `ServerConfig`; the
/// `connect` policy governs backend dials and the reconnect backoff
/// schedule reused by the health sweep.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Capacity of each client connection's bounded outbound queue.
    pub conn_queue: usize,
    /// Hard cap on one inbound protocol line.
    pub max_line_bytes: usize,
    /// Period of the membership sweep (`PING` probes + reconnects).
    pub health_interval: Duration,
    /// Read deadline for one `ROLE` health probe; a backend that accepts
    /// the dial but stalls is marked down after this long instead of
    /// wedging the sweep behind the request `read_timeout`.
    pub probe_timeout: Duration,
    /// Backend dial policy; `delay_before_retry` drives reconnect backoff.
    pub connect: ConnectOptions,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            conn_queue: 1024,
            max_line_bytes: 1024 * 1024,
            health_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(500),
            connect: ConnectOptions {
                connect_timeout: Some(Duration::from_secs(1)),
                read_timeout: Some(Duration::from_secs(10)),
                attempts: 1,
                ..ConnectOptions::default()
            },
        }
    }
}

impl RouterConfig {
    pub fn validate(&self) -> Result<(), String> {
        if self.conn_queue == 0 {
            return Err("conn_queue must be positive".into());
        }
        if self.max_line_bytes < 16 {
            return Err("max_line_bytes must be at least 16".into());
        }
        if self.health_interval.is_zero() {
            return Err("health_interval must be positive".into());
        }
        if self.probe_timeout.is_zero() {
            return Err("probe_timeout must be positive".into());
        }
        Ok(())
    }
}

/// Outbound handle for one client connection.
struct ConnHandle {
    out: Sender<String>,
    stream: TcpStream,
}

/// State shared by every router thread.
struct RouterHub {
    schema: Schema,
    /// Coarse predicate-space layout shared with every backend (both
    /// sides derive it deterministically from the schema), used to encode
    /// events for the first-stage prune against cached backend summaries.
    summary_space: SummarySpace,
    stats: Arc<ClusterStats>,
    membership: Arc<Membership>,
    migration: Arc<MigrationController>,
    conns: Mutex<HashMap<u64, ConnHandle>>,
    /// Which client connection owns (receives `EVENT` notifications for)
    /// each id. The router synthesizes notifications from merged rows;
    /// backend-side ownership never reaches clients.
    owners: RwLock<HashMap<SubId, u64>>,
}

impl RouterHub {
    /// Queues `line` on a client's outbound queue; overflow drops the line
    /// (`replies_dropped`) — a router never disconnects a slow consumer,
    /// because it cannot replay what the backends already matched.
    fn push_line(&self, conn_id: u64, line: String) {
        let conns = self.conns.lock();
        let Some(handle) = conns.get(&conn_id) else {
            return;
        };
        match handle.out.try_send(line) {
            Ok(()) => ClusterStats::add(&self.stats.replies_sent, 1),
            Err(TrySendError::Full(_)) => ClusterStats::add(&self.stats.replies_dropped, 1),
            Err(TrySendError::Disconnected(_)) => {}
        }
    }
}

/// A running router. Call [`Router::shutdown`] for an orderly stop.
pub struct Router {
    hub: Arc<RouterHub>,
    membership: Arc<Membership>,
    stats: Arc<ClusterStats>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Wakes the accept thread out of its poller wait at shutdown.
    accept_waker: Arc<Waker>,
    accept_thread: Option<JoinHandle<()>>,
    health_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Router {
    /// Binds `addr` (port 0 for ephemeral), dials every backend once, and
    /// starts the accept and health threads. The router comes up even if
    /// every backend is down — churn is refused per-backend and matching
    /// degrades to partial rows until the sweep reconnects them.
    pub fn start(
        schema: Schema,
        backend_addrs: &[String],
        config: RouterConfig,
        addr: &str,
    ) -> std::io::Result<Router> {
        let specs: Vec<BackendSpec> = backend_addrs
            .iter()
            .map(|a| BackendSpec::standalone(a.clone()))
            .collect();
        Self::start_replicated(schema, &specs, config, addr)
    }

    /// Like [`Router::start`], but each partition may name a replica node
    /// alongside its primary. When a primary is marked down, the health
    /// sweep (or the routing paths, inline) promotes a caught-up replica
    /// instead of degrading that partition to partial rows.
    pub fn start_replicated(
        schema: Schema,
        specs: &[BackendSpec],
        config: RouterConfig,
        addr: &str,
    ) -> std::io::Result<Router> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        if specs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one backend",
            ));
        }
        let stats = Arc::new(ClusterStats::default());
        let membership = Arc::new(Membership::connect_replicated(
            specs,
            config.connect.clone(),
            config.probe_timeout,
            &stats,
        ));
        let migration = Arc::new(MigrationController::new(config.connect.clone()));
        let hub = Arc::new(RouterHub {
            summary_space: SummarySpace::new(&schema),
            schema,
            stats: stats.clone(),
            membership: membership.clone(),
            migration,
            conns: Mutex::new(HashMap::new()),
            owners: RwLock::new(HashMap::new()),
        });

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));

        // The accept thread parks on an apcm-netio poller instead of
        // sleep-polling the nonblocking listener: zero wakeups while no
        // client is dialing, and the eventfd waker turns shutdown from a
        // worst-case 5 ms poll-quantum wait into an immediate unblock.
        const TOKEN_LISTENER: u64 = 0;
        const TOKEN_WAKER: u64 = 1;
        let accept_waker = Arc::new(Waker::new()?);
        let poller = Poller::new()?;
        poller.add(
            listener.as_raw_fd(),
            TOKEN_LISTENER,
            Interest::READ,
            Mode::Level,
        )?;
        poller.add(accept_waker.fd(), TOKEN_WAKER, Interest::READ, Mode::Level)?;

        let accept_thread = {
            let hub = hub.clone();
            let stats = stats.clone();
            let shutdown = shutdown.clone();
            let conn_threads = conn_threads.clone();
            let conn_queue = config.conn_queue;
            let max_line_bytes = config.max_line_bytes;
            let waker = accept_waker.clone();
            std::thread::Builder::new()
                .name("apcm-route-accept".into())
                .spawn(move || {
                    let mut events: Vec<PollEvent> = Vec::new();
                    let mut next_conn = 1u64;
                    while !shutdown.load(Ordering::SeqCst) {
                        events.clear();
                        if poller.wait(&mut events, None).is_err() {
                            break;
                        }
                        if events.iter().any(|e| e.token == TOKEN_WAKER) {
                            waker.drain();
                            continue; // re-check the shutdown flag
                        }
                        // Level-triggered listener: drain the whole
                        // accept backlog before waiting again.
                        loop {
                            match listener.accept() {
                                Ok((stream, _peer)) => {
                                    let conn_id = next_conn;
                                    next_conn += 1;
                                    ClusterStats::add(&stats.conns_total, 1);
                                    ClusterStats::add(&stats.conns_active, 1);
                                    spawn_connection(
                                        hub.clone(),
                                        stream,
                                        conn_id,
                                        conn_queue,
                                        max_line_bytes,
                                        &conn_threads,
                                    );
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                                Err(_) => return,
                            }
                        }
                    }
                })
                .expect("spawning router accept thread")
        };

        let health_thread = {
            let hub = hub.clone();
            let shutdown = shutdown.clone();
            let interval = config.health_interval;
            std::thread::Builder::new()
                .name("apcm-route-health".into())
                .spawn(move || {
                    let quantum = Duration::from_millis(20).min(interval);
                    'outer: loop {
                        let mut waited = Duration::ZERO;
                        while waited < interval {
                            if shutdown.load(Ordering::SeqCst) {
                                break 'outer;
                            }
                            std::thread::sleep(quantum);
                            waited += quantum;
                        }
                        hub.membership.sweep(&hub.stats);
                        // The tick runs on post-sweep state: active-node
                        // addresses reflect any failover just performed.
                        hub.migration.tick(&hub.membership, &hub.stats);
                    }
                })
                .expect("spawning router health thread")
        };

        Ok(Router {
            hub,
            membership,
            stats,
            addr: local_addr,
            shutdown,
            accept_waker,
            accept_thread: Some(accept_thread),
            health_thread: Some(health_thread),
            conn_threads,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// The elastic-resharding controller (admin surface for tests and
    /// tooling; the wire surface is `RESHARD ADD`/`REMOVE`/`STATUS`).
    pub fn migration(&self) -> &MigrationController {
        &self.hub.migration
    }

    /// Graceful stop: join the accept and health threads, close every
    /// client connection, join the workers, and return the final rendered
    /// stats plus topology.
    pub fn shutdown(mut self) -> String {
        self.shutdown.store(true, Ordering::SeqCst);
        self.accept_waker.wake();
        if let Some(t) = self.health_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        {
            let conns = self.hub.conns.lock();
            for handle in conns.values() {
                let _ = handle.stream.shutdown(Shutdown::Both);
            }
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_threads.lock());
        for t in handles {
            let _ = t.join();
        }
        let mut out = self.stats.render(
            self.membership.len(),
            self.membership.up_count(),
            self.membership.node_count(),
            self.membership.nodes_up(),
        );
        for line in self.membership.topology_lines() {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

fn spawn_connection(
    hub: Arc<RouterHub>,
    stream: TcpStream,
    conn_id: u64,
    conn_queue: usize,
    max_line_bytes: usize,
    conn_threads: &Mutex<Vec<JoinHandle<()>>>,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let (out_tx, out_rx) = bounded::<String>(conn_queue);

    let writer = {
        let stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        std::thread::Builder::new()
            .name(format!("apcm-route-{conn_id}-w"))
            .spawn(move || write_loop(stream, out_rx))
            .expect("spawning router connection writer")
    };

    let reader = {
        let registry_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        hub.conns.lock().insert(
            conn_id,
            ConnHandle {
                out: out_tx.clone(),
                stream: registry_stream,
            },
        );
        std::thread::Builder::new()
            .name(format!("apcm-route-{conn_id}-r"))
            .spawn(move || {
                read_loop(&hub, stream, conn_id, out_tx, max_line_bytes);
                hub.conns.lock().remove(&conn_id);
                ClusterStats::sub(&hub.stats.conns_active, 1);
            })
            .expect("spawning router connection reader")
    };

    let mut threads = conn_threads.lock();
    threads.push(writer);
    threads.push(reader);
}

fn write_loop(stream: TcpStream, out_rx: Receiver<String>) {
    let mut w = BufWriter::new(stream);
    while let Ok(line) = out_rx.recv() {
        if w.write_all(line.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
            return;
        }
        if out_rx.is_empty() && w.flush().is_err() {
            return;
        }
    }
    let _ = w.flush();
}

/// Whether a successful churn reply consumed one durable log record —
/// the router-side bookkeeping behind the partition's promotion floor.
/// Fresh `SUB` and successful `UNSUB` acks append exactly one record;
/// `+OK claimed` is an ownership transfer with no durable churn.
fn churn_ack_appends_record(reply: &str) -> bool {
    reply.starts_with('+') && !reply.starts_with("+OK claimed")
}

/// Forwards one churn command line to the partition owning `id` and
/// returns the authoritative reply.
///
/// Without a migration, ownership is the ring placement. Mid-migration a
/// moved id follows its leg's phase: the donor alone before double-write
/// (the pull stream carries the churn over), donor-plus-copy during
/// double-write (the donor's ack is authoritative; the copy shrinks the
/// cursor gap the flip must wait out, and failures are tolerated — the
/// record still reaches the puller through the stream), and the puller
/// alone once flipped.
fn route_churn(hub: &RouterHub, id: SubId, line: &str) -> String {
    let Some(m) = hub.migration.active() else {
        let member = hub.membership.ring().route(id);
        return route_to_member(hub, member, line);
    };
    let old = m.old_ring.route(id);
    let new = m.new_ring.route(id);
    let Some(leg) = (old != new).then(|| m.leg(old, new)).flatten() else {
        return route_to_member(hub, old, line);
    };
    // Raise the in-flight gauge *before* reading the phase: the flip
    // stores the phase first and then waits for zero, so every copy it
    // must cover is either observed or already routed to the puller.
    let leg_phase = leg.enter_double_write();
    if leg_phase != phase::DOUBLE_WRITE {
        leg.exit_double_write();
        if leg_phase == phase::FLIPPED {
            // Between the flip and the cutover the donor no longer takes
            // moved churn and the puller is still draining the stream
            // tail — a direct write now could be shadowed by a stale
            // streamed record. Refuse retryably; the client rides it out
            // over the (short) cutover window.
            return format!("-ERR not owner {}", id.0);
        }
        let target = if leg_phase >= phase::DONE { new } else { old };
        return route_to_member(hub, target, line);
    }
    let reply = route_to_member(hub, old, line);
    if churn_ack_appends_record(&reply) {
        if let Some(puller) = hub.membership.partition_for_member(new) {
            if route_to_partition(hub, &puller, line).starts_with('+') {
                ClusterStats::add(&hub.stats.reshard_double_writes, 1);
            }
        }
    }
    leg.exit_double_write();
    reply
}

/// Resolves a ring member to its partition and forwards `line`.
fn route_to_member(hub: &RouterHub, member: u32, line: &str) -> String {
    match hub.membership.partition_for_member(member) {
        Some(partition) => route_to_partition(hub, &partition, line),
        None => {
            ClusterStats::add(&hub.stats.protocol_errors, 1);
            format!("-ERR backend {member} unavailable")
        }
    }
}

/// Forwards one command line to a partition's active node. A node failure
/// marks it down and triggers an inline failover (promote the caught-up
/// standby) followed by one retry; `-ERR backend <i> unavailable` is
/// returned only when *neither* node is serviceable — which
/// `BrokerClient` classifies as a retryable refusal.
fn route_to_partition(hub: &RouterHub, partition: &Partition, line: &str) -> String {
    for attempt in 0..2 {
        let node = partition.active_node().clone();
        let mut conn = node.lock_conn();
        let reply = match conn.as_mut() {
            Some(c) => c.request(line),
            None => Err(std::io::Error::other("down")),
        };
        match reply {
            Ok(reply) => {
                if churn_ack_appends_record(&reply) {
                    // A durable ack carries the appended record's log seq
                    // (`+OK <id> seq <n>`); folding it into the floor
                    // covers the record immediately, so a follower probed
                    // as caught-up *before* this ack cannot keep serving
                    // reads (or summaries) that miss it.
                    partition.record_churn_ack(protocol::parse_churn_ack_seq(&reply));
                }
                return reply;
            }
            Err(_) => {
                node.mark_down_locked(&mut conn, hub.membership.connect_options(), &hub.stats);
                drop(conn); // failover takes the promote lock conn-free
                if attempt == 0 && hub.membership.try_failover(partition, &hub.stats).is_some() {
                    continue;
                }
                break;
            }
        }
    }
    ClusterStats::add(&hub.stats.protocol_errors, 1);
    format!("-ERR backend {} unavailable", partition.index)
}

/// Publishes one window to a partition, failing over to a standby when
/// the active node dies mid-window. `None` only when no node could serve
/// it.
///
/// A publish window is a pure read of the subscription catalog, so it is
/// offered to a read-eligible follower first — one whose applied sequence
/// already clears this router's churn-ack floor, which proves it holds
/// every subscription any client has had acknowledged (the seq-floor
/// staleness guard; see `Partition::choose_read_follower`). A lagging
/// chain falls back to the primary rather than ever returning stale rows,
/// and a follower dying mid-window is marked down and retried on the
/// primary without triggering a failover — the primary is still fine.
fn scatter_to_partition(
    hub: &RouterHub,
    partition: &Partition,
    event_lines: &[String],
) -> Option<Vec<Vec<SubId>>> {
    match partition.choose_read_follower() {
        FollowerRead::Serve(i) => {
            let node = partition.nodes()[i].clone();
            let mut conn = node.lock_conn();
            match conn.as_mut().map(|c| c.publish_window(event_lines)) {
                Some(Ok(rows)) => {
                    ClusterStats::add(&hub.stats.reads_follower_served, 1);
                    return Some(rows);
                }
                Some(Err(_)) => {
                    node.mark_down_locked(&mut conn, hub.membership.connect_options(), &hub.stats);
                }
                None => {}
            }
        }
        FollowerRead::BelowFloor => {
            ClusterStats::add(&hub.stats.reads_floor_fallbacks, 1);
        }
        FollowerRead::NoFollowers => {}
    }
    for attempt in 0..2 {
        let node = partition.active_node().clone();
        let mut conn = node.lock_conn();
        let result = conn.as_mut().map(|c| c.publish_window(event_lines));
        match result {
            Some(Ok(rows)) => return Some(rows),
            Some(Err(_)) => {
                node.mark_down_locked(&mut conn, hub.membership.connect_options(), &hub.stats);
            }
            None => {}
        }
        drop(conn); // failover takes the promote lock conn-free
        if attempt == 0 && hub.membership.try_failover(partition, &hub.stats).is_none() {
            return None;
        }
    }
    None
}

/// Fans `events` to every partition's active node and merges the
/// per-event rows. Returns `(rows, partial)`; `partial` is set when a
/// partition could not be served by either of its nodes, in which case
/// the rows cover the surviving partitions only.
///
/// Before fanning out, the window is tested against each partition's
/// cached predicate-space summary (the cluster-level first stage of the
/// A-PCM prune): a partition whose summary shares no bucket with any
/// event in the window provably holds no matching subscription and is
/// skipped outright. A pruned partition contributes empty rows — it is
/// *not* partial; the emptiness is proven, not degraded. Missing or
/// stale-tagged summaries fall back to a full send, and the prune is
/// disabled entirely mid-migration, when subscriptions move between
/// backends faster than summaries refresh.
fn scatter_window(hub: &RouterHub, events: &[Event]) -> (Vec<Vec<SubId>>, bool) {
    let event_lines: Vec<String> = events
        .iter()
        .map(|ev| ev.display(&hub.schema).to_string())
        .collect();
    let partitions = hub.membership.partitions();
    // One migration snapshot for the whole window: the prune decision and
    // the authority filter below must agree on whether a reshard is on.
    let migration = hub.migration.active();

    let mut skip = vec![false; partitions.len()];
    if migration.is_none() {
        let event_bits: Vec<FixedBitSet> = events
            .iter()
            .map(|ev| hub.summary_space.event_bits(ev))
            .collect();
        for (partition, skip) in partitions.iter().zip(skip.iter_mut()) {
            if let Some(summary) = partition.summary_for_scatter() {
                *skip = !hub.summary_space.window_may_match(&summary, &event_bits);
            }
        }
    }
    let pruned = skip.iter().filter(|&&s| s).count() as u64;
    ClusterStats::add(&hub.stats.backends_pruned, pruned);
    ClusterStats::add(&hub.stats.fanouts_possible, partitions.len() as u64);
    ClusterStats::add(&hub.stats.fanouts_sent, partitions.len() as u64 - pruned);

    let live = partitions.len() - pruned as usize;
    let mut per_backend: Vec<Option<Vec<Vec<SubId>>>> = if live <= 1 {
        // Nothing to overlap: serve the at-most-one surviving partition on
        // the publishing thread instead of paying a scoped spawn.
        partitions
            .iter()
            .zip(&skip)
            .map(|(partition, &skip)| {
                if skip {
                    Some(Vec::new())
                } else {
                    scatter_to_partition(hub, partition, &event_lines)
                }
            })
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .iter()
                .zip(&skip)
                .map(|(partition, &skip)| {
                    let event_lines = &event_lines;
                    (!skip).then(|| {
                        scope.spawn(move || scatter_to_partition(hub, partition, event_lines))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle {
                    Some(h) => h.join().unwrap(),
                    None => Some(Vec::new()),
                })
                .collect()
        })
    };

    // Mid-migration, an id's subscription can exist on two backends at
    // once (the puller absorbs it legs before the flip; the donor keeps
    // its stale copy until the post-flip prune). Only the authoritative
    // side sees live churn, so keep each backend's matches only for ids
    // it is currently authoritative for — otherwise an id unsubbed on the
    // puller could still surface from the donor's stale copy.
    if let Some(m) = migration {
        for (partition, rows) in partitions.iter().zip(per_backend.iter_mut()) {
            if let Some(rows) = rows {
                for row in rows.iter_mut() {
                    row.retain(|&id| m.authority(id) == partition.index as u32);
                }
            }
        }
    }

    let partial = per_backend.iter().any(Option::is_none);
    let mut merged = vec![Vec::new(); events.len()];
    for rows in per_backend.into_iter().flatten() {
        for (slot, mut row) in merged.iter_mut().zip(rows) {
            if slot.is_empty() {
                *slot = row;
            } else {
                slot.append(&mut row);
            }
        }
    }
    for row in &mut merged {
        row.sort_unstable();
        row.dedup();
    }
    (merged, partial)
}

/// Emits the `RESULT` rows of one window to the publisher and synthesizes
/// `EVENT` notifications to each matched id's owning client connection.
fn deliver_window(
    hub: &RouterHub,
    conn_id: u64,
    first_seq: u64,
    events: &[Event],
    rows: &[Vec<SubId>],
    partial: bool,
) {
    ClusterStats::add(&hub.stats.windows, 1);
    if partial {
        ClusterStats::add(&hub.stats.cluster_degraded, 1);
    }
    for (i, (event, row)) in events.iter().zip(rows).enumerate() {
        ClusterStats::add(&hub.stats.matches, row.len() as u64);
        hub.push_line(
            conn_id,
            protocol::render_result_ext(first_seq + i as u64, row, partial),
        );
        for &id in row {
            let owner = hub.owners.read().get(&id).copied();
            if let Some(owner) = owner {
                hub.push_line(
                    owner,
                    protocol::render_event_notification(id, event, &hub.schema),
                );
            }
        }
    }
}

/// Parses and executes client requests until EOF, error, or QUIT.
fn read_loop(
    hub: &RouterHub,
    stream: TcpStream,
    conn_id: u64,
    out: Sender<String>,
    max_line_bytes: usize,
) {
    let stats = &hub.stats;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut next_seq = 0u64;
    let reply = |text: String| {
        let _ = out.send(text);
        ClusterStats::add(&stats.replies_sent, 1);
    };
    loop {
        match read_capped_line(&mut reader, &mut line, max_line_bytes) {
            Ok(LineOutcome::Line) => {}
            Ok(LineOutcome::TooLong) => {
                ClusterStats::add(&stats.oversized_lines, 1);
                ClusterStats::add(&stats.protocol_errors, 1);
                reply(format!("-ERR line too long (max {max_line_bytes} bytes)"));
                continue;
            }
            Ok(LineOutcome::Eof) | Err(_) => return,
        }
        let request = match protocol::parse_request(&hub.schema, &line) {
            Ok(Some(req)) => req,
            Ok(None) => continue,
            Err(msg) => {
                ClusterStats::add(&stats.protocol_errors, 1);
                reply(format!("-ERR {msg}"));
                continue;
            }
        };
        match request {
            Request::Sub { id, sub } => {
                // Re-render canonically; the backend fingerprints the
                // parsed expression, so takeover semantics survive the
                // extra parse/render hop.
                let forwarded = format!("SUB {} {}", id.0, sub.display(&hub.schema));
                let backend_reply = route_churn(hub, id, &forwarded);
                if backend_reply.starts_with("+OK claimed") {
                    hub.owners.write().insert(id, conn_id);
                    ClusterStats::add(&stats.claims_routed, 1);
                } else if backend_reply.starts_with('+') {
                    hub.owners.write().insert(id, conn_id);
                    ClusterStats::add(&stats.subs_routed, 1);
                    // A fresh SUB may have grown the backend's summary
                    // past the router's cache; pruning on the stale bits
                    // could skip a backend that now holds a match. Drop
                    // the cache — full fan-out until the sweep refreshes.
                    // (`+OK claimed` and UNSUB never grow the bits.)
                    if let Some(partition) = hub.membership.route(id) {
                        partition.invalidate_summary();
                    }
                }
                // `-ERR duplicate <id>` passes through verbatim so the
                // client can drive CLAIM.
                reply(backend_reply);
            }
            Request::Unsub { id } => {
                let backend_reply = route_churn(hub, id, &format!("UNSUB {}", id.0));
                if backend_reply.starts_with('+') {
                    hub.owners.write().remove(&id);
                    ClusterStats::add(&stats.unsubs_routed, 1);
                }
                reply(backend_reply);
            }
            Request::Claim { id } => {
                let backend_reply = route_churn(hub, id, &format!("CLAIM {}", id.0));
                if backend_reply.starts_with('+') {
                    hub.owners.write().insert(id, conn_id);
                    ClusterStats::add(&stats.claims_routed, 1);
                }
                reply(backend_reply);
            }
            Request::Pub { event } => {
                let seq = next_seq;
                next_seq += 1;
                ClusterStats::add(&stats.events_in, 1);
                reply(format!("+OK {seq}"));
                let events = [event];
                let (rows, partial) = scatter_window(hub, &events);
                deliver_window(hub, conn_id, seq, &events, &rows, partial);
            }
            Request::Batch { count } => {
                let first = next_seq;
                let mut events = Vec::with_capacity(count);
                for i in 0..count {
                    match read_capped_line(&mut reader, &mut line, max_line_bytes) {
                        Ok(LineOutcome::Line) => {}
                        Ok(LineOutcome::TooLong) => {
                            ClusterStats::add(&stats.oversized_lines, 1);
                            ClusterStats::add(&stats.protocol_errors, 1);
                            reply(format!("-ERR batch line {i}: line too long"));
                            continue;
                        }
                        Ok(LineOutcome::Eof) | Err(_) => return,
                    }
                    match apcm_bexpr::parser::parse_event(&hub.schema, line.trim()) {
                        Ok(event) => {
                            next_seq += 1;
                            ClusterStats::add(&stats.events_in, 1);
                            events.push(event);
                        }
                        Err(e) => {
                            ClusterStats::add(&stats.protocol_errors, 1);
                            reply(format!("-ERR batch line {i}: bad event: {e}"));
                        }
                    }
                }
                reply(format!("+OK batch {first} {}", events.len()));
                if !events.is_empty() {
                    let (rows, partial) = scatter_window(hub, &events);
                    deliver_window(hub, conn_id, first, &events, &rows, partial);
                }
            }
            Request::Stats => {
                let body = stats.render(
                    hub.membership.len(),
                    hub.membership.up_count(),
                    hub.membership.node_count(),
                    hub.membership.nodes_up(),
                );
                reply(format!("+OK stats\n{body}."));
            }
            Request::Snapshot => {
                // Fan the snapshot request to every partition's active
                // node (followers snapshot on their own rotation cadence).
                let mut ok = 0usize;
                for partition in hub.membership.partitions() {
                    let node = partition.active_node().clone();
                    let mut conn = node.lock_conn();
                    match conn.as_mut().map(|c| c.request("SNAPSHOT")) {
                        Some(Ok(r)) if r.starts_with('+') => ok += 1,
                        Some(Ok(_)) | None => {}
                        Some(Err(_)) => node.mark_down_locked(
                            &mut conn,
                            hub.membership.connect_options(),
                            stats,
                        ),
                    }
                }
                reply(format!(
                    "+OK snapshot {ok} of {} backends",
                    hub.membership.len()
                ));
            }
            Request::Topology => {
                // One queued string so async lines cannot interleave.
                let mut body = format!("+OK topology {}\n", hub.membership.len());
                for line in hub.membership.topology_lines() {
                    body.push_str(&line);
                    body.push('\n');
                }
                body.push('.');
                reply(body);
            }
            Request::Role => {
                // The router is not a replication peer; it answers with a
                // router-flavoured report so generic probes don't error.
                reply(format!(
                    "+OK role router partitions {} up {}",
                    hub.membership.len(),
                    hub.membership.up_count()
                ));
            }
            Request::Replicate { .. } | Request::ReplAck { .. } => {
                ClusterStats::add(&stats.protocol_errors, 1);
                reply("-ERR REPLICATE targets a backend, not the router".into());
            }
            Request::Summary { .. } => {
                // The router consumes backend summaries; it does not own a
                // subscription catalog to summarize.
                ClusterStats::add(&stats.protocol_errors, 1);
                reply("-ERR SUMMARY targets a backend, not the router".into());
            }
            Request::Reshard(cmd) => match cmd {
                protocol::ReshardCmd::Add { primary, followers } => {
                    let spec = BackendSpec { primary, followers };
                    match hub.migration.start_add(&hub.membership, &spec, stats) {
                        Ok(new) => reply(format!("+OK reshard add started partition {new}")),
                        Err(e) => {
                            ClusterStats::add(&stats.protocol_errors, 1);
                            reply(format!("-ERR {e}"));
                        }
                    }
                }
                protocol::ReshardCmd::Remove { partition } => {
                    match hub
                        .migration
                        .start_remove(&hub.membership, partition, stats)
                    {
                        Ok(()) => {
                            reply(format!("+OK reshard remove started partition {partition}"))
                        }
                        Err(e) => {
                            ClusterStats::add(&stats.protocol_errors, 1);
                            reply(format!("-ERR {e}"));
                        }
                    }
                }
                protocol::ReshardCmd::Status => reply(hub.migration.status_line()),
                protocol::ReshardCmd::Pull { .. }
                | protocol::ReshardCmd::Cutoff
                | protocol::ReshardCmd::Prune { .. } => {
                    ClusterStats::add(&stats.protocol_errors, 1);
                    reply("-ERR RESHARD PULL/CUTOFF/PRUNE target a backend, not the router".into());
                }
            },
            Request::Promote | Request::Demote { .. } => {
                ClusterStats::add(&stats.protocol_errors, 1);
                reply("-ERR role changes target a backend, not the router".into());
            }
            Request::Ping => reply("+PONG".into()),
            Request::Quit => {
                reply("+OK bye".into());
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        RouterConfig::default().validate().unwrap();
    }

    #[test]
    fn config_rejects_bad_knobs() {
        for config in [
            RouterConfig {
                conn_queue: 0,
                ..RouterConfig::default()
            },
            RouterConfig {
                max_line_bytes: 4,
                ..RouterConfig::default()
            },
            RouterConfig {
                health_interval: Duration::ZERO,
                ..RouterConfig::default()
            },
        ] {
            assert!(config.validate().is_err());
        }
    }

    #[test]
    fn start_requires_backends() {
        let schema = Schema::uniform(2, 8);
        assert!(Router::start(schema, &[], RouterConfig::default(), "127.0.0.1:0").is_err());
    }
}
