//! Router-side counters and the `STATS` snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters shared by every router thread. All relaxed: monitoring data,
/// not synchronization. Mirrors the spirit of `apcm_server::ServerStats`
/// but counts routing work, not matching work — the backends keep their
/// own engine counters.
#[derive(Default)]
pub struct ClusterStats {
    /// Client connections accepted over the router's lifetime.
    pub conns_total: AtomicU64,
    /// Currently open client connections.
    pub conns_active: AtomicU64,
    /// `SUB` commands successfully routed to a backend.
    pub subs_routed: AtomicU64,
    /// `UNSUB` commands successfully routed to a backend.
    pub unsubs_routed: AtomicU64,
    /// Ownership reclaims routed (`CLAIM`, or a `SUB` the backend answered
    /// `+OK claimed`).
    pub claims_routed: AtomicU64,
    /// Events accepted for fan-out.
    pub events_in: AtomicU64,
    /// Scatter-gather windows executed.
    pub windows: AtomicU64,
    /// Total (event, subscription) match pairs in merged rows.
    pub matches: AtomicU64,
    /// Windows served with one or more backends unreachable — the merged
    /// rows were flagged `partial`.
    pub cluster_degraded: AtomicU64,
    /// Backend requests that failed with an I/O error (each one marks the
    /// backend down until the health sweep reconnects it).
    pub backend_errors: AtomicU64,
    /// Successful backend reconnects by the health sweep.
    pub backend_reconnects: AtomicU64,
    /// Health probes that hit the per-probe read deadline: the node
    /// accepted the connection but stalled instead of answering `ROLE`.
    /// Counted separately from `backend_errors` because a stalling node
    /// is a distinct failure mode from a refused dial — and before the
    /// deadline existed, one such node wedged the whole sweep.
    pub backend_probe_timeouts: AtomicU64,
    /// `RESHARD ADD`/`REMOVE` migrations accepted.
    pub reshards_started: AtomicU64,
    /// Migrations driven to completion (ring swapped, state cleared).
    pub reshards_completed: AtomicU64,
    /// Per-leg ownership flips (moved ids re-aimed at the puller).
    pub reshard_flips: AtomicU64,
    /// Churn commands copied to the puller during a leg's double-write
    /// phase (the donor's ack stays authoritative).
    pub reshard_double_writes: AtomicU64,
    /// `RESHARD PULL` re-issues by the migration controller after the
    /// puller reported idle/disconnected (either side died mid-leg).
    pub reshard_pull_restarts: AtomicU64,
    /// Lines delivered to client connections.
    pub replies_sent: AtomicU64,
    /// Lines dropped because a client's outbound queue was full.
    pub replies_dropped: AtomicU64,
    /// Protocol errors returned to clients (including `-ERR backend ...
    /// unavailable` refusals for churn routed at a down backend).
    pub protocol_errors: AtomicU64,
    /// Lines rejected for exceeding the router's `max_line_bytes`.
    pub oversized_lines: AtomicU64,
    /// Partitions re-aimed at a promoted standby after their active node
    /// was marked down.
    pub failovers: AtomicU64,
    /// `PROMOTE` commands the router issued (failovers plus the sweep's
    /// designation reconciliation).
    pub promotions: AtomicU64,
    /// `DEMOTE` commands the router issued (returning ex-primaries folded
    /// back in as followers).
    pub demotions: AtomicU64,
    /// Full summary bitsets fetched from backends by the health sweep
    /// (epoch-unchanged round trips are not counted: nothing shipped).
    pub summary_refreshes: AtomicU64,
    /// Backends skipped by scatter because their cached summary proved no
    /// subscription there could match any event in the window.
    pub backends_pruned: AtomicU64,
    /// Scatter windows served by a read-eligible follower instead of the
    /// partition's primary.
    pub reads_follower_served: AtomicU64,
    /// Scatter windows that wanted a follower but found every live one
    /// below the churn-ack floor, falling back to the primary — the
    /// seq-floor guard refusing a potentially stale read.
    pub reads_floor_fallbacks: AtomicU64,
    /// Per-window backend sends actually performed by scatter.
    pub fanouts_sent: AtomicU64,
    /// Per-window backend sends a summary-blind scatter would have made
    /// (windows × partitions). `fanouts_sent / fanouts_possible` is the
    /// pruned fan-out ratio; 1.0 means pruning never skipped anything.
    pub fanouts_possible: AtomicU64,
}

impl ClusterStats {
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(counter: &AtomicU64, n: u64) {
        counter.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Renders the `STATS` body: `key value` lines, one per metric, plus
    /// the membership gauges passed in by the router. `backends` counts
    /// partitions (the wire-visible slots, unchanged by replication);
    /// `nodes` counts every server in the table.
    pub fn render(
        &self,
        backends: usize,
        backends_up: usize,
        nodes: usize,
        nodes_up: usize,
    ) -> String {
        let mut out = String::new();
        let mut push = |key: &str, value: u64| {
            out.push_str(key);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        };
        push("conns_total", Self::get(&self.conns_total));
        push("conns_active", Self::get(&self.conns_active));
        push("subs_routed", Self::get(&self.subs_routed));
        push("unsubs_routed", Self::get(&self.unsubs_routed));
        push("claims_routed", Self::get(&self.claims_routed));
        push("events_in", Self::get(&self.events_in));
        push("windows", Self::get(&self.windows));
        push("matches", Self::get(&self.matches));
        push("cluster_degraded", Self::get(&self.cluster_degraded));
        push("backend_errors", Self::get(&self.backend_errors));
        push("backend_reconnects", Self::get(&self.backend_reconnects));
        push(
            "backend_probe_timeouts",
            Self::get(&self.backend_probe_timeouts),
        );
        push("reshards_started", Self::get(&self.reshards_started));
        push("reshards_completed", Self::get(&self.reshards_completed));
        push("reshard_flips", Self::get(&self.reshard_flips));
        push(
            "reshard_double_writes",
            Self::get(&self.reshard_double_writes),
        );
        push(
            "reshard_pull_restarts",
            Self::get(&self.reshard_pull_restarts),
        );
        push("replies_sent", Self::get(&self.replies_sent));
        push("replies_dropped", Self::get(&self.replies_dropped));
        push("protocol_errors", Self::get(&self.protocol_errors));
        push("oversized_lines", Self::get(&self.oversized_lines));
        push("failovers", Self::get(&self.failovers));
        push("promotions", Self::get(&self.promotions));
        push("demotions", Self::get(&self.demotions));
        push("summary_refreshes", Self::get(&self.summary_refreshes));
        push("backends_pruned", Self::get(&self.backends_pruned));
        push(
            "reads_follower_served",
            Self::get(&self.reads_follower_served),
        );
        push(
            "reads_floor_fallbacks",
            Self::get(&self.reads_floor_fallbacks),
        );
        push("fanouts_sent", Self::get(&self.fanouts_sent));
        push("fanouts_possible", Self::get(&self.fanouts_possible));
        push("backends", backends as u64);
        push("backends_up", backends_up as u64);
        push("nodes", nodes as u64);
        push("nodes_up", nodes_up as u64);
        let sent = Self::get(&self.fanouts_sent);
        let possible = Self::get(&self.fanouts_possible);
        // The one non-integer line: the fraction of possible backend sends
        // scatter actually made. 1.000 until pruning first skips a backend.
        let ratio = if possible == 0 {
            1.0
        } else {
            sent as f64 / possible as f64
        };
        out.push_str(&format!("pruned_fanout_ratio {ratio:.3}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_membership_gauges() {
        let stats = ClusterStats::default();
        ClusterStats::add(&stats.windows, 3);
        ClusterStats::add(&stats.cluster_degraded, 1);
        let text = stats.render(3, 2, 6, 5);
        assert!(text.contains("windows 3\n"));
        assert!(text.contains("cluster_degraded 1\n"));
        assert!(text.contains("backends 3\n"));
        assert!(text.contains("backends_up 2\n"));
        assert!(text.contains("nodes 6\n"));
        assert!(text.contains("nodes_up 5\n"));
        assert!(text.contains("failovers 0\n"));
        assert!(text.contains("claims_routed 0\n"));
    }

    #[test]
    fn pruned_fanout_ratio_tracks_sent_over_possible() {
        let stats = ClusterStats::default();
        // No windows yet: degenerate ratio pins to 1.0 (no pruning seen).
        assert!(stats
            .render(1, 1, 1, 1)
            .contains("pruned_fanout_ratio 1.000\n"));
        ClusterStats::add(&stats.fanouts_possible, 8);
        ClusterStats::add(&stats.fanouts_sent, 6);
        ClusterStats::add(&stats.backends_pruned, 2);
        let text = stats.render(1, 1, 1, 1);
        assert!(text.contains("pruned_fanout_ratio 0.750\n"), "{text}");
        assert!(text.contains("backends_pruned 2\n"));
        assert!(text.contains("summary_refreshes 0\n"));
    }
}
