//! apcm-cluster: a multi-node shard tier over `apcm-server`.
//!
//! One [`Router`] fronts N backend shard servers. Clients speak the same
//! newline text protocol they would to a standalone server; the router
//! owns no subscriptions:
//!
//! * **Routing** — `SUB`/`UNSUB`/`CLAIM` go to exactly one backend,
//!   chosen by the same Fibonacci hash (`apcm_server::route_partition`)
//!   that `ShardedEngine` uses in-process. The hash is a wire-visible
//!   contract, pinned by tests in both crates.
//! * **Scatter-gather** — `PUB`/`BATCH` windows fan to every live backend
//!   on scoped threads; rows are merged (sorted, deduplicated) and the
//!   router synthesizes `EVENT` notifications from the merged rows.
//! * **Membership** — a health thread `PING`s every backend each sweep
//!   and redials down backends on the jittered exponential-backoff
//!   schedule of `apcm_server::ConnectOptions`. Churn routed at a down
//!   backend is refused (`-ERR backend <i> unavailable`); matching
//!   degrades to the surviving partitions with rows flagged `partial`
//!   and `cluster_degraded` counted. `TOPOLOGY` reports the table.
//! * **[`ClusterHandle`]** — an in-process cluster (backends + router on
//!   loopback) with `kill_backend`/`restart_backend` fault injection for
//!   tests and benchmarks.

pub mod backend;
pub mod handle;
pub mod membership;
pub mod router;
pub mod stats;

pub use backend::BackendConn;
pub use handle::ClusterHandle;
pub use membership::{Backend, Membership};
pub use router::{Router, RouterConfig};
pub use stats::ClusterStats;
