//! apcm-cluster: a multi-node shard tier over `apcm-server`.
//!
//! One [`Router`] fronts N backend shard servers. Clients speak the same
//! newline text protocol they would to a standalone server; the router
//! owns no subscriptions:
//!
//! * **Routing** — `SUB`/`UNSUB`/`CLAIM` go to exactly one backend,
//!   chosen by the consistent-hash virtual-node ring
//!   (`apcm_server::Ring`) shared with the backends' `RESHARD` scopes.
//!   The ring placement is a wire-visible contract, pinned by golden
//!   tests in both crates.
//! * **Scatter-gather** — `PUB`/`BATCH` windows fan to every live backend
//!   on scoped threads; rows are merged (sorted, deduplicated) and the
//!   router synthesizes `EVENT` notifications from the merged rows.
//! * **Membership** — a health thread `ROLE`-probes every node each
//!   sweep (the probe doubles as the liveness ping and reports role,
//!   sequence, and replication lag) and redials down nodes on the
//!   jittered exponential-backoff schedule of
//!   `apcm_server::ConnectOptions`. `TOPOLOGY` reports the table, one
//!   row per node with `role=primary|replica`, seq, and lag columns.
//! * **Replication & failover** — each partition may pair its primary
//!   with a replica ([`BackendSpec`]). When the active node is marked
//!   down, the sweep (or the routing paths, inline) promotes the standby
//!   — but only if its applied sequence has caught up to the partition's
//!   churn high-water mark, so acknowledged churn is never dropped. A
//!   returning ex-primary is demoted back into a follower. Churn is
//!   refused (`-ERR backend <i> unavailable`) only when *neither* node is
//!   serviceable; matching degrades to the surviving partitions with rows
//!   flagged `partial` and `cluster_degraded` counted.
//! * **Elastic resharding** — `RESHARD ADD`/`REMOVE` migrate ~1/N of the
//!   id space onto a joining backend (or off a leaving one) live: the
//!   [`migration`] controller drives per-leg catch-up over the
//!   replication stream, double-writes churn during the handoff, and
//!   flips ownership atomically with zero acked churn dropped.
//! * **[`ClusterHandle`]** — an in-process cluster (backends + router on
//!   loopback) with `kill_node`/`restart_node` fault injection for tests
//!   and benchmarks.

pub mod backend;
pub mod handle;
pub mod membership;
pub mod migration;
pub mod router;
pub mod stats;

pub use backend::BackendConn;
pub use handle::ClusterHandle;
pub use membership::{BackendSpec, Membership, Node, Partition};
pub use migration::{ActiveMigration, MigrationController, MigrationKind};
pub use router::{Router, RouterConfig};
pub use stats::ClusterStats;
