//! Cluster membership: one entry per backend shard server, with health
//! state maintained by periodic `PING` probes and jittered
//! exponential-backoff reconnects.
//!
//! Lock order is always connection, then metadata — both the health sweep
//! and the request/scatter paths follow it, so a backend can be marked
//! down from either side without deadlock.

use crate::backend::BackendConn;
use crate::stats::ClusterStats;
use apcm_bexpr::SubId;
use apcm_server::client::ConnectOptions;
use apcm_server::route_partition;
use parking_lot::{Mutex, MutexGuard};
use std::sync::Arc;
use std::time::Instant;

/// Health metadata for one backend, guarded separately from the
/// connection so `TOPOLOGY` never waits behind an in-flight window.
pub struct BackendMeta {
    /// Round-trip of the last successful `PING`, microseconds.
    pub last_ping_us: Option<u64>,
    /// Successful reconnects after a failure.
    pub reconnects: u64,
    /// Times the backend was marked down.
    pub failures: u64,
    /// Consecutive failed reconnect attempts since the last success.
    attempt: u32,
    /// Earliest time the sweep may dial again.
    next_retry: Instant,
}

pub struct Backend {
    pub index: usize,
    pub addr: String,
    conn: Mutex<Option<BackendConn>>,
    meta: Mutex<BackendMeta>,
}

impl Backend {
    fn new(index: usize, addr: String) -> Self {
        Self {
            index,
            addr,
            conn: Mutex::new(None),
            meta: Mutex::new(BackendMeta {
                last_ping_us: None,
                reconnects: 0,
                failures: 0,
                attempt: 0,
                next_retry: Instant::now(),
            }),
        }
    }

    /// Locks the connection slot; `None` inside means the backend is down.
    pub fn lock_conn(&self) -> MutexGuard<'_, Option<BackendConn>> {
        self.conn.lock()
    }

    pub fn is_up(&self) -> bool {
        self.conn.lock().is_some()
    }

    /// Drops the connection and schedules the first reconnect attempt.
    /// Call with the connection guard already held (the failing caller
    /// owns it) so a concurrent request cannot use the dead stream.
    pub fn mark_down_locked(
        &self,
        conn: &mut Option<BackendConn>,
        connect: &ConnectOptions,
        stats: &ClusterStats,
    ) {
        if conn.take().is_some() {
            ClusterStats::add(&stats.backend_errors, 1);
            let mut meta = self.meta.lock();
            meta.failures += 1;
            meta.attempt = 1;
            meta.last_ping_us = None;
            meta.next_retry = Instant::now() + connect.delay_before_retry(1);
        }
    }

    /// One `TOPOLOGY` report line for this backend.
    fn topology_line(&self) -> String {
        let up = self.is_up();
        let meta = self.meta.lock();
        let ping = meta
            .last_ping_us
            .map(|us| us.to_string())
            .unwrap_or_else(|| "-".into());
        format!(
            "backend {} {} {} ping_us {} reconnects {}",
            self.index,
            self.addr,
            if up { "up" } else { "down" },
            ping,
            meta.reconnects
        )
    }
}

/// The routing table: backend order is the partition order, so
/// [`Membership::route`] and `ShardedEngine::shard_of` agree by
/// construction (both call [`route_partition`]).
pub struct Membership {
    backends: Vec<Arc<Backend>>,
    connect: ConnectOptions,
}

impl Membership {
    /// Builds the table and eagerly dials every backend once; failures are
    /// left down with a scheduled retry, so a router can start ahead of
    /// its backends.
    pub fn connect_all(addrs: &[String], connect: ConnectOptions, stats: &ClusterStats) -> Self {
        let membership = Self {
            backends: addrs
                .iter()
                .enumerate()
                .map(|(i, addr)| Arc::new(Backend::new(i, addr.clone())))
                .collect(),
            connect,
        };
        membership.sweep(stats);
        membership
    }

    pub fn len(&self) -> usize {
        self.backends.len()
    }

    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    pub fn backends(&self) -> &[Arc<Backend>] {
        &self.backends
    }

    pub fn up_count(&self) -> usize {
        self.backends.iter().filter(|b| b.is_up()).count()
    }

    pub fn connect_options(&self) -> &ConnectOptions {
        &self.connect
    }

    /// The backend owning subscription `id` — the shared routing contract.
    pub fn route(&self, id: SubId) -> &Arc<Backend> {
        &self.backends[route_partition(id, self.backends.len())]
    }

    /// One health pass: `PING` every connected backend (marking failures
    /// down), and re-dial every down backend whose backoff delay expired.
    pub fn sweep(&self, stats: &ClusterStats) {
        for backend in &self.backends {
            let mut conn = backend.conn.lock();
            match conn.as_mut() {
                Some(c) => {
                    let start = Instant::now();
                    match c.request("PING") {
                        Ok(reply) if reply.starts_with('+') => {
                            backend.meta.lock().last_ping_us =
                                Some(start.elapsed().as_micros() as u64);
                        }
                        _ => backend.mark_down_locked(&mut conn, &self.connect, stats),
                    }
                }
                None => {
                    let mut meta = backend.meta.lock();
                    if Instant::now() < meta.next_retry {
                        continue;
                    }
                    let one_shot = ConnectOptions {
                        attempts: 1,
                        ..self.connect.clone()
                    };
                    match BackendConn::connect(&backend.addr, &one_shot) {
                        Ok(c) => {
                            *conn = Some(c);
                            if meta.attempt > 0 {
                                meta.reconnects += 1;
                                ClusterStats::add(&stats.backend_reconnects, 1);
                            }
                            meta.attempt = 0;
                        }
                        Err(_) => {
                            meta.attempt = meta.attempt.saturating_add(1);
                            meta.next_retry =
                                Instant::now() + self.connect.delay_before_retry(meta.attempt);
                        }
                    }
                }
            }
        }
    }

    /// The `TOPOLOGY` report: one line per backend, partition order.
    pub fn topology_lines(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.topology_line()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fast_options() -> ConnectOptions {
        ConnectOptions {
            connect_timeout: Some(Duration::from_millis(200)),
            attempts: 1,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..ConnectOptions::default()
        }
    }

    #[test]
    fn unreachable_backends_start_down_and_backoff() {
        // Port 1 refuses instantly; both backends stay down.
        let stats = ClusterStats::default();
        let membership = Membership::connect_all(
            &["127.0.0.1:1".into(), "127.0.0.1:1".into()],
            fast_options(),
            &stats,
        );
        assert_eq!(membership.len(), 2);
        assert_eq!(membership.up_count(), 0);
        let lines = membership.topology_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("down"), "{}", lines[0]);
        assert!(lines[1].starts_with("backend 1 "), "{}", lines[1]);
        // Sweeping again respects (and eventually passes) the backoff.
        std::thread::sleep(Duration::from_millis(10));
        membership.sweep(&stats);
        assert_eq!(membership.up_count(), 0);
    }

    #[test]
    fn route_follows_the_shared_contract() {
        let stats = ClusterStats::default();
        let membership = Membership::connect_all(
            &["a".into(), "b".into(), "c".into()],
            fast_options(),
            &stats,
        );
        for id in 0..500u32 {
            assert_eq!(
                membership.route(SubId(id)).index,
                route_partition(SubId(id), 3)
            );
        }
    }
}
