//! Cluster membership: one [`Partition`] per backend slot, each holding a
//! primary node and (optionally) a replica node. Health state is
//! maintained by periodic `ROLE` probes — the probe doubles as the
//! liveness ping and reports the node's replication role, sequence, and
//! lag — with jittered exponential-backoff reconnects.
//!
//! When a partition's designated node goes down and a caught-up standby
//! exists, [`Membership::try_failover`] promotes the standby and re-aims
//! the partition at it; a returning ex-primary is demoted back to a
//! follower by the sweep's reconciliation pass. Promotion requires the
//! standby's applied sequence to be at or past the partition's observed
//! churn high-water mark — a lagging replica is never promoted, because
//! that would silently drop acknowledged churn.
//!
//! Lock order is always connection, then metadata — the health sweep, the
//! request/scatter paths, and failover all follow it, so a node can be
//! marked down from any side without deadlock. Failover additionally
//! serializes on a per-partition promote lock, acquired only while no
//! connection lock is held.

use crate::backend::BackendConn;
use crate::stats::ClusterStats;
use apcm_bexpr::SubId;
use apcm_encoding::FixedBitSet;
use apcm_server::client::ConnectOptions;
use apcm_server::protocol::SummaryReply;
use apcm_server::{protocol, Ring};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Addresses of one partition's nodes.
#[derive(Debug, Clone)]
pub struct BackendSpec {
    /// The node that starts as the partition's primary.
    pub primary: String,
    /// Follower chain in hop order: `followers[0]` replicates from the
    /// primary, `followers[1]` from `followers[0]`, and so on. Every
    /// follower is a failover candidate and (once caught up past the
    /// churn-ack floor) a read-serving target.
    pub followers: Vec<String>,
}

impl BackendSpec {
    pub fn standalone(primary: impl Into<String>) -> Self {
        Self {
            primary: primary.into(),
            followers: Vec::new(),
        }
    }

    pub fn replicated(primary: impl Into<String>, replica: impl Into<String>) -> Self {
        Self {
            primary: primary.into(),
            followers: vec![replica.into()],
        }
    }

    pub fn chain(primary: impl Into<String>, followers: Vec<String>) -> Self {
        Self {
            primary: primary.into(),
            followers,
        }
    }
}

/// Health metadata for one node, guarded separately from the connection
/// so `TOPOLOGY` never waits behind an in-flight window.
pub struct NodeMeta {
    /// Round-trip of the last successful `ROLE` probe, microseconds.
    pub last_ping_us: Option<u64>,
    /// Successful reconnects after a failure.
    pub reconnects: u64,
    /// Times the node was marked down.
    pub failures: u64,
    /// Last reported role: `Some(true)` = primary, `Some(false)` =
    /// replica, `None` = never probed.
    pub reports_primary: Option<bool>,
    /// Last reported churn sequence (primary: log seq; replica: applied).
    pub seq: Option<u64>,
    /// Last reported replication lag in records (primary-side view).
    pub lag: Option<u64>,
    /// Last reported acked sequence (primary: slowest connected
    /// follower's `REPLACK` cursor; replica: its own applied seq).
    pub acked: Option<u64>,
    /// Last reported live-stream count (primary: follower streams;
    /// replica: 1 while its pull stream is fully handshaked, else 0).
    pub connected: Option<u64>,
    /// The upstream a replica last reported following.
    pub following: Option<String>,
    /// Consecutive failed reconnect attempts since the last success.
    attempt: u32,
    /// Earliest time the sweep may dial again.
    next_retry: Instant,
}

/// One backend server within a partition.
pub struct Node {
    /// The partition (wire-visible backend index) this node serves.
    pub partition: usize,
    pub addr: String,
    conn: Mutex<Option<BackendConn>>,
    meta: Mutex<NodeMeta>,
}

impl Node {
    fn new(partition: usize, addr: String) -> Self {
        Self {
            partition,
            addr,
            conn: Mutex::new(None),
            meta: Mutex::new(NodeMeta {
                last_ping_us: None,
                reconnects: 0,
                failures: 0,
                reports_primary: None,
                seq: None,
                lag: None,
                acked: None,
                connected: None,
                following: None,
                attempt: 0,
                next_retry: Instant::now(),
            }),
        }
    }

    /// Locks the connection slot; `None` inside means the node is down.
    pub fn lock_conn(&self) -> MutexGuard<'_, Option<BackendConn>> {
        self.conn.lock()
    }

    pub fn is_up(&self) -> bool {
        self.conn.lock().is_some()
    }

    /// Role from the last successful probe.
    pub fn reports_primary(&self) -> Option<bool> {
        self.meta.lock().reports_primary
    }

    /// Churn sequence from the last successful probe.
    pub fn reported_seq(&self) -> Option<u64> {
        self.meta.lock().seq
    }

    /// Acked sequence from the last successful probe.
    pub fn reported_acked(&self) -> Option<u64> {
        self.meta.lock().acked
    }

    /// Whether the node's replication stream(s) were live at last probe.
    pub fn reported_connected(&self) -> Option<u64> {
        self.meta.lock().connected
    }

    /// The upstream a replica last reported following.
    pub fn reported_following(&self) -> Option<String> {
        self.meta.lock().following.clone()
    }

    /// Drops the connection and schedules the first reconnect attempt.
    /// Call with the connection guard already held (the failing caller
    /// owns it) so a concurrent request cannot use the dead stream.
    pub fn mark_down_locked(
        &self,
        conn: &mut Option<BackendConn>,
        connect: &ConnectOptions,
        stats: &ClusterStats,
    ) {
        if conn.take().is_some() {
            ClusterStats::add(&stats.backend_errors, 1);
            let mut meta = self.meta.lock();
            meta.failures += 1;
            meta.attempt = 1;
            meta.last_ping_us = None;
            meta.lag = None;
            meta.next_retry = Instant::now() + connect.delay_before_retry(1);
        }
    }

    /// Records a fresh `ROLE` report under the metadata lock.
    fn record_role(&self, ping_us: u64, report: &protocol::RoleReport) {
        let mut meta = self.meta.lock();
        meta.last_ping_us = Some(ping_us);
        meta.reports_primary = Some(report.primary);
        meta.seq = Some(report.seq);
        meta.lag = Some(report.lag);
        meta.acked = Some(report.acked);
        meta.connected = Some(report.connected);
        meta.following = report.following.clone();
    }

    /// One `TOPOLOGY` report line for this node. Role is the last
    /// reported one (a down node shows its final known role), falling
    /// back to the partition's current designation. Follower roles
    /// render as `chain[i/N]` — hop `i` of the partition's `N`
    /// standbys — and every line carries the node's `acked` column
    /// (primary: slowest follower cursor; follower: applied seq).
    /// `active_seq` (the active primary's last probed sequence) turns a
    /// follower's own seq into a per-follower lag.
    fn topology_line(
        &self,
        designated_primary: bool,
        chain_pos: usize,
        chain_len: usize,
        active_seq: Option<u64>,
    ) -> String {
        let up = self.is_up();
        let meta = self.meta.lock();
        let primary = meta.reports_primary.unwrap_or(designated_primary);
        let role = if primary {
            "primary".to_string()
        } else {
            format!("chain[{chain_pos}/{chain_len}]")
        };
        let opt = |v: Option<u64>| v.map(|n| n.to_string()).unwrap_or_else(|| "-".into());
        let lag = if primary {
            meta.lag
        } else {
            // Per-follower lag: records the active primary has that this
            // follower's last probe had not yet applied.
            match (active_seq, meta.seq) {
                (Some(head), Some(own)) => Some(head.saturating_sub(own)),
                _ => meta.lag,
            }
        };
        format!(
            "backend {} {} {} role={role} seq {} lag {} acked {} ping_us {} reconnects {}",
            self.partition,
            self.addr,
            if up { "up" } else { "down" },
            opt(meta.seq),
            opt(lag),
            opt(meta.acked),
            opt(meta.last_ping_us),
            meta.reconnects
        )
    }
}

/// A cached backend predicate-space summary, tagged with the node it came
/// from: summary epochs are per-node counters (each engine counts its own
/// churn), so an epoch from one node is meaningless against another —
/// after a failover or restart the cache must be treated as absent.
struct SummaryCache {
    /// Index into the partition's `nodes` the summary was fetched from.
    node: usize,
    epoch: u64,
    bits: FixedBitSet,
}

/// The partition's summary cell: the cache plus a generation counter
/// bumped on every invalidation. A refresh records the generation before
/// talking to the backend and its store is rejected if the generation
/// moved in between — otherwise a sweep that fetched the bits just before
/// a routed `SUB` grew them would re-install the pre-`SUB` subset after
/// the ack path invalidated the cache, and scatter would prune a backend
/// that provably holds a matching subscription.
struct SummarySlot {
    generation: u64,
    cache: Option<SummaryCache>,
}

/// One slot of the routing table: the nodes replicating one slice of the
/// subscription space, and which of them churn and scatter target now.
pub struct Partition {
    pub index: usize,
    nodes: Vec<Arc<Node>>,
    /// Index into `nodes` of the node currently treated as primary.
    active: AtomicUsize,
    /// Cached coarse summary of the backend's subscriptions (see
    /// `apcm_encoding::SummarySpace`). An empty cache — or a tag naming a
    /// node other than the current active one — means the scatter path
    /// must fall back to full fan-out for this partition.
    summary: Mutex<SummarySlot>,
    /// Highest primary log sequence this router has *observed as a real
    /// sequence*: from `ROLE` probes, from the `seq <n>` carried on every
    /// durable churn ack, and from migration floor raises. Because churn
    /// acks report the appended record's own sequence, this floor covers
    /// every record the router has acked — including acks landing between
    /// sweeps against a backend with pre-existing history, where a mere
    /// ack *count* would undercount. One of the two lower bounds combined
    /// by [`Self::last_primary_seq`].
    probed_seq: AtomicU64,
    /// Fallback count of churn acks that carried no sequence (a backend
    /// without persistence — which also cannot replicate, so the floor is
    /// moot there). Kept separate from `probed_seq`: summing a count into
    /// the probed value would double-count records the probe already saw,
    /// pushing the floor past the primary's real sequence and wedging
    /// failover.
    acked_records: AtomicU64,
    /// Serializes failover attempts (sweep vs. inline routing paths).
    promote_lock: Mutex<()>,
    /// Round-robin cursor over read-eligible followers.
    read_cursor: AtomicUsize,
}

/// Outcome of follower read-target selection for one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowerRead {
    /// No follower is up (or none configured): the primary serves.
    NoFollowers,
    /// Followers are up but none clears the seq floor: the primary
    /// serves, and the caller counts a floor fallback — the guard, not
    /// luck, rejected every stale candidate.
    BelowFloor,
    /// `nodes()[i]` serves this read.
    Serve(usize),
}

impl Partition {
    fn new(index: usize, spec: &BackendSpec) -> Self {
        let mut nodes = vec![Arc::new(Node::new(index, spec.primary.clone()))];
        for follower in &spec.followers {
            nodes.push(Arc::new(Node::new(index, follower.clone())));
        }
        Self {
            index,
            nodes,
            active: AtomicUsize::new(0),
            summary: Mutex::new(SummarySlot {
                generation: 0,
                cache: None,
            }),
            probed_seq: AtomicU64::new(0),
            acked_records: AtomicU64::new(0),
            promote_lock: Mutex::new(()),
            read_cursor: AtomicUsize::new(0),
        }
    }

    pub fn nodes(&self) -> &[Arc<Node>] {
        &self.nodes
    }

    pub fn has_replica(&self) -> bool {
        self.nodes.len() > 1
    }

    pub fn active_index(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    pub fn active_node(&self) -> &Arc<Node> {
        &self.nodes[self.active_index()]
    }

    /// Whether the node churn/scatter would target right now is up.
    pub fn is_serviceable(&self) -> bool {
        self.active_node().is_up()
    }

    /// The promotion floor: a lower bound on the acked churn sequence.
    /// Both inputs undercount the true sequence (the probe can be stale,
    /// the no-seq ack count misses records appended outside this router),
    /// so their max is still a safe bound — and because every durable ack
    /// folds its own record's sequence into `probed_seq`, every record
    /// the router acknowledged is covered the moment its ack returns.
    pub fn last_primary_seq(&self) -> u64 {
        self.probed_seq
            .load(Ordering::Relaxed)
            .max(self.acked_records.load(Ordering::Relaxed))
    }

    /// Records a router-observed churn acknowledgment. `seq` is the
    /// durable log sequence the ack carried (`+OK <id> seq <n>`): folding
    /// it in makes the floor cover the acked record *immediately* — a
    /// follower probed as caught-up before this ack can no longer serve
    /// reads until it re-proves itself past the new record. A seq-less
    /// ack (non-persistent backend) falls back to the record count.
    pub fn record_churn_ack(&self, seq: Option<u64>) {
        match seq {
            Some(seq) => self.raise_floor(seq),
            None => {
                self.acked_records.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Whether `nodes()[i]` may serve reads right now: an up follower,
    /// fully handshaked onto its upstream (`connected`, which a broker
    /// only reports after any bootstrap/rewind resolved — so a returned
    /// ex-primary's divergent catalog is never read), whose applied
    /// sequence at last probe already clears the churn-ack floor. The
    /// probe undercounts (applied seqs only grow between probes, and a
    /// bootstrap/rewind jumps to a primary head that is itself past the
    /// floor), so the check is conservative: an eligible follower holds
    /// every subscription this router has acked.
    fn read_eligible(&self, i: usize, floor: u64) -> bool {
        let node = &self.nodes[i];
        i != self.active_index()
            && node.is_up()
            && node.reports_primary() == Some(false)
            && node.reported_connected().unwrap_or(0) > 0
            && node.reported_seq().unwrap_or(0) >= floor
    }

    /// Picks the follower to serve one read window, round-robin across
    /// the eligible ones. See [`FollowerRead`] for the fallback cases.
    pub fn choose_read_follower(&self) -> FollowerRead {
        let floor = self.last_primary_seq();
        let active = self.active_index();
        let mut any_up = false;
        let eligible: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| {
                if i != active && self.nodes[i].is_up() {
                    any_up = true;
                }
                self.read_eligible(i, floor)
            })
            .collect();
        if eligible.is_empty() {
            return if any_up {
                FollowerRead::BelowFloor
            } else {
                FollowerRead::NoFollowers
            };
        }
        let k = self.read_cursor.fetch_add(1, Ordering::Relaxed) % eligible.len();
        FollowerRead::Serve(eligible[k])
    }

    /// The cached summary bits, but only when the cache was fetched from
    /// a node whose catalog provably covers every subscription this
    /// router has acked: the active primary, or a follower currently
    /// read-eligible (past the churn-ack floor). A summary from any
    /// other node (pre-failover leftovers, a lagging follower) proves
    /// nothing about acked subscriptions — `None` forces full fan-out.
    pub fn summary_for_scatter(&self) -> Option<FixedBitSet> {
        let slot = self.summary.lock();
        let floor = self.last_primary_seq();
        slot.cache
            .as_ref()
            .filter(|c| c.node == self.active_index() || self.read_eligible(c.node, floor))
            .map(|c| c.bits.clone())
    }

    /// `(generation, cached epoch from node)` observed atomically — what a
    /// refresh records before talking to the backend. The epoch goes out
    /// as the `SUMMARY <epoch>` argument so an unchanged backend can
    /// answer without shipping the bitset again; the generation gates the
    /// later [`Self::store_summary`].
    fn summary_refresh_token(&self, node: usize) -> (u64, Option<u64>) {
        let slot = self.summary.lock();
        let epoch = slot
            .cache
            .as_ref()
            .filter(|c| c.node == node)
            .map(|c| c.epoch);
        (slot.generation, epoch)
    }

    /// Installs a fetched summary — unless an invalidation arrived after
    /// the refresh captured `generation`, in which case the fetched bits
    /// may predate whatever grew the backend and are dropped, leaving
    /// full fan-out until the next sweep.
    fn store_summary(&self, generation: u64, node: usize, epoch: u64, bits: FixedBitSet) {
        let mut slot = self.summary.lock();
        if slot.generation == generation {
            slot.cache = Some(SummaryCache { node, epoch, bits });
        }
    }

    /// Drops the cached summary; scatter falls back to full fan-out for
    /// this partition until the next successful refresh. Called whenever
    /// the backend's bits may have *grown* past the cache — a routed
    /// fresh `SUB`, a reconnect (restarts reset the epoch counter), a
    /// completed reshard. Shrink-only staleness (`UNSUB`) is left alone:
    /// a stale superset can only cost fan-out, never a match. Bumping the
    /// generation fences out any refresh already in flight.
    pub fn invalidate_summary(&self) {
        let mut slot = self.summary.lock();
        slot.generation += 1;
        slot.cache = None;
    }

    /// `(epoch, populated buckets)` of the cached summary, for `TOPOLOGY`.
    pub fn summary_status(&self) -> Option<(u64, usize)> {
        self.summary
            .lock()
            .cache
            .as_ref()
            .map(|c| (c.epoch, c.bits.count_ones()))
    }

    /// Folds an out-of-band `ROLE` observation into the promotion floor.
    /// The migration controller probes a puller right after cutting its
    /// pull stream off: the pulled records raised the puller's log
    /// sequence without any router-side churn ack, so without this the
    /// floor would lag until the next sweep probe — a window where a
    /// promoted standby could silently miss migrated subscriptions.
    pub fn raise_floor(&self, seq: u64) {
        self.probed_seq.fetch_max(seq, Ordering::Relaxed);
    }
}

/// The routing table. Partition indices are the consistent-hash ring's
/// member ids ([`Membership::route`] hashes an id onto the ring and looks
/// the owning member's partition up by index), so the table can grow and
/// shrink — elastic resharding adds or drops one member at a time and only
/// ~1/N of ids move. The ring layout is the wire contract shared with
/// `apcm_server::Ring`'s golden pins.
pub struct Membership {
    partitions: RwLock<Vec<Arc<Partition>>>,
    /// The id → member placement currently in force. Swapped atomically
    /// by the migration controller when a reshard completes; mid-reshard
    /// the controller routes moved ids itself from its old/new ring pair.
    ring: RwLock<Arc<Ring>>,
    connect: ConnectOptions,
    /// Read deadline for one `ROLE` health probe. Distinct from the
    /// connect timeout: a backend that accepts the dial but stalls
    /// without answering would otherwise hold the sweep for the full
    /// request `read_timeout` — or forever, if that is `None`.
    probe_timeout: Duration,
    /// Next partition index to hand out. Monotonic and never reused,
    /// even after the highest member leaves: a reused index would let a
    /// stale ring scope on a backend name a *different* node pair.
    next_index: AtomicU32,
}

impl Membership {
    /// Single-node partitions, one per address — the pre-replication
    /// layout. Eagerly dials every node once; failures are left down with
    /// a scheduled retry, so a router can start ahead of its backends.
    pub fn connect_all(
        addrs: &[String],
        connect: ConnectOptions,
        probe_timeout: Duration,
        stats: &ClusterStats,
    ) -> Self {
        let specs: Vec<BackendSpec> = addrs
            .iter()
            .map(|a| BackendSpec::standalone(a.clone()))
            .collect();
        Self::connect_replicated(&specs, connect, probe_timeout, stats)
    }

    /// Builds the table from explicit {primary, replica} specs.
    pub fn connect_replicated(
        specs: &[BackendSpec],
        connect: ConnectOptions,
        probe_timeout: Duration,
        stats: &ClusterStats,
    ) -> Self {
        let members: Vec<u32> = (0..specs.len() as u32).collect();
        let membership = Self {
            partitions: RwLock::new(
                specs
                    .iter()
                    .enumerate()
                    .map(|(i, spec)| Arc::new(Partition::new(i, spec)))
                    .collect(),
            ),
            ring: RwLock::new(Arc::new(Ring::new(&members))),
            connect,
            probe_timeout,
            next_index: AtomicU32::new(specs.len() as u32),
        };
        membership.sweep(stats);
        membership
    }

    /// Partition count.
    pub fn len(&self) -> usize {
        self.partitions.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.partitions.read().is_empty()
    }

    /// Snapshot of the partition table (stable `index` order is insertion
    /// order; indices are ring member ids and survive removals).
    pub fn partitions(&self) -> Vec<Arc<Partition>> {
        self.partitions.read().clone()
    }

    /// The ring placement currently in force.
    pub fn ring(&self) -> Arc<Ring> {
        self.ring.read().clone()
    }

    /// Atomically swaps the routing ring — the completion step of a
    /// reshard, after every moved id's data is on its new owner.
    pub fn set_ring(&self, ring: Arc<Ring>) {
        *self.ring.write() = ring;
    }

    /// The partition serving ring member `member`, if present.
    pub fn partition_for_member(&self, member: u32) -> Option<Arc<Partition>> {
        self.partitions
            .read()
            .iter()
            .find(|p| p.index == member as usize)
            .cloned()
    }

    /// Registers (and eagerly dials) a new partition for `spec`, assigning
    /// the next never-used member index. The new partition serves scatter
    /// immediately but owns no ring arcs until a migration completes and
    /// [`Self::set_ring`] installs a ring containing its index.
    pub fn add_partition(&self, spec: &BackendSpec, stats: &ClusterStats) -> u32 {
        let partition = {
            let mut parts = self.partitions.write();
            let index = self.next_index.fetch_add(1, Ordering::Relaxed) as usize;
            let partition = Arc::new(Partition::new(index, spec));
            parts.push(partition.clone());
            partition
        };
        for node in partition.nodes() {
            self.probe(node, stats);
        }
        partition.index as u32
    }

    /// Drops a partition from the table (scale-in completion: its ring
    /// share has been drained onto the survivors). Returns the removed
    /// partition so the caller can report on it.
    pub fn remove_partition(&self, member: u32) -> Option<Arc<Partition>> {
        let mut parts = self.partitions.write();
        let pos = parts.iter().position(|p| p.index == member as usize)?;
        Some(parts.remove(pos))
    }

    /// Partitions whose active node is up — the ones scatter can serve.
    pub fn up_count(&self) -> usize {
        self.partitions
            .read()
            .iter()
            .filter(|p| p.is_serviceable())
            .count()
    }

    pub fn node_count(&self) -> usize {
        self.partitions.read().iter().map(|p| p.nodes.len()).sum()
    }

    pub fn nodes_up(&self) -> usize {
        self.partitions
            .read()
            .iter()
            .flat_map(|p| p.nodes.iter())
            .filter(|n| n.is_up())
            .count()
    }

    pub fn connect_options(&self) -> &ConnectOptions {
        &self.connect
    }

    /// The partition owning subscription `id` under the current ring —
    /// the shared routing contract. `None` only in the transient window
    /// where the ring names a member whose partition was just removed.
    pub fn route(&self, id: SubId) -> Option<Arc<Partition>> {
        let member = self.ring.read().route(id);
        self.partition_for_member(member)
    }

    /// One health pass: `ROLE`-probe every connected node (marking
    /// failures down), re-dial every down node whose backoff delay
    /// expired, then reconcile each partition's roles — promoting the
    /// designated node if it answers as a replica, demoting a returned
    /// ex-primary to follow the active node, and failing over when the
    /// active node is down.
    pub fn sweep(&self, stats: &ClusterStats) {
        for partition in self.partitions() {
            for node in &partition.nodes {
                if self.probe(node, stats) {
                    // A fresh dial may be a restarted backend whose epoch
                    // counter reset; cached epochs are no longer comparable
                    // to what it reports, so the cache must start over.
                    partition.invalidate_summary();
                }
            }
            self.reconcile(&partition, stats);
            self.refresh_summary(&partition, stats);
        }
    }

    /// Probe (or redial) one node. Returns whether a new connection was
    /// established — i.e. the node (re)joined during this probe.
    fn probe(&self, node: &Node, stats: &ClusterStats) -> bool {
        let mut dialed = false;
        let mut conn = node.conn.lock();
        if conn.is_none() {
            let mut meta = node.meta.lock();
            if Instant::now() < meta.next_retry {
                return false;
            }
            let one_shot = ConnectOptions {
                attempts: 1,
                ..self.connect.clone()
            };
            match BackendConn::connect(&node.addr, &one_shot) {
                Ok(c) => {
                    *conn = Some(c);
                    dialed = true;
                    if meta.attempt > 0 {
                        meta.reconnects += 1;
                        ClusterStats::add(&stats.backend_reconnects, 1);
                    }
                    meta.attempt = 0;
                }
                Err(_) => {
                    meta.attempt = meta.attempt.saturating_add(1);
                    meta.next_retry =
                        Instant::now() + self.connect.delay_before_retry(meta.attempt);
                    return false;
                }
            }
        }
        let c = conn.as_mut().expect("dialed above");
        // Tighten the read deadline for the probe itself: an accepted-but-
        // stalled backend must cost at most `probe_timeout`, not wedge the
        // sweep (and with it failover) behind the full request timeout.
        let _ = c.set_read_timeout(Some(self.probe_timeout));
        let start = Instant::now();
        match c.request("ROLE") {
            Ok(reply) if reply.starts_with('+') => {
                let ping_us = start.elapsed().as_micros() as u64;
                if let Ok(report) = protocol::parse_role_report(&reply) {
                    node.record_role(ping_us, &report);
                } else {
                    node.meta.lock().last_ping_us = Some(ping_us);
                }
                let _ = c.set_read_timeout(self.connect.read_timeout);
            }
            outcome => {
                if matches!(
                    &outcome,
                    Err(e) if matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    )
                ) {
                    ClusterStats::add(&stats.backend_probe_timeouts, 1);
                }
                node.mark_down_locked(&mut conn, &self.connect, stats);
            }
        }
        dialed
    }

    /// Refreshes a partition's cached predicate-space summary, preferring
    /// its active node but falling back to a read-eligible follower when
    /// the active is down — a follower past the churn-ack floor holds
    /// every acked subscription, so its summary is a valid pruning
    /// superset and scatter keeps pruning through a primary outage. Any
    /// failure simply drops the cache — pruning is an optimisation and
    /// full fan-out is the safe floor — but a dead stream still marks the
    /// node down so the routing paths see it.
    fn refresh_summary(&self, partition: &Partition, stats: &ClusterStats) {
        let active_idx = partition.active_index();
        let source_idx = if partition.nodes[active_idx].is_up() {
            active_idx
        } else {
            match partition.choose_read_follower() {
                FollowerRead::Serve(i) => i,
                _ => active_idx,
            }
        };
        let node = &partition.nodes[source_idx];
        let (generation, cached) = partition.summary_refresh_token(source_idx);
        let mut conn = node.lock_conn();
        let Some(c) = conn.as_mut() else {
            partition.invalidate_summary();
            return;
        };
        match c.request(&format!("SUMMARY {}", cached.unwrap_or(0))) {
            Ok(reply) => match protocol::parse_summary_reply(&reply) {
                Ok(SummaryReply::Unchanged { .. }) if cached.is_some() => {}
                Ok(SummaryReply::Summary { epoch, bits }) => {
                    partition.store_summary(generation, source_idx, epoch, bits);
                    ClusterStats::add(&stats.summary_refreshes, 1);
                }
                // "Unchanged" against no cache, or an unparseable reply:
                // nothing usable, fall back to full fan-out.
                _ => partition.invalidate_summary(),
            },
            Err(_) => {
                node.mark_down_locked(&mut conn, &self.connect, stats);
                partition.invalidate_summary();
            }
        }
    }

    /// Re-aligns a partition's actual roles with its designation.
    fn reconcile(&self, partition: &Partition, stats: &ClusterStats) {
        let active_idx = partition.active_index();
        let active = &partition.nodes[active_idx];
        if !active.is_up() {
            if partition.has_replica() {
                self.try_failover(partition, stats);
            }
            return;
        }
        if let Some(seq) = active.reported_seq() {
            partition.probed_seq.fetch_max(seq, Ordering::Relaxed);
        }
        let floor = partition.last_primary_seq();

        // The designated node answering as a replica (demoted out of band,
        // or restarted with a follower config): promote it back — unless
        // it is behind the high-water mark, in which case a caught-up
        // standby already answering as primary takes the designation
        // instead (promoting the stale node would drop acked churn).
        if active.reports_primary() == Some(false) {
            if active.reported_seq().unwrap_or(0) >= floor {
                let mut conn = active.lock_conn();
                if let Some(c) = conn.as_mut() {
                    match c.request("PROMOTE") {
                        Ok(r) if r.starts_with('+') => {
                            ClusterStats::add(&stats.promotions, 1);
                            active.meta.lock().reports_primary = Some(true);
                        }
                        _ => {
                            active.mark_down_locked(&mut conn, &self.connect, stats);
                            return;
                        }
                    }
                }
            } else if let Some((i, _)) = partition.nodes.iter().enumerate().find(|(i, n)| {
                *i != active_idx
                    && n.is_up()
                    && n.reports_primary() == Some(true)
                    && n.reported_seq().unwrap_or(0) >= floor
            }) {
                partition.active.store(i, Ordering::SeqCst);
                ClusterStats::add(&stats.failovers, 1);
                return self.reconcile(partition, stats);
            } else {
                // No safe primary yet; leave the replica serving matches
                // (churn is refused read-only and clients retry).
                return;
            }
        }

        // A standby claiming primacy is a returned ex-primary: demote it
        // so it rejoins as a follower of the active node.
        let active_addr = active.addr.clone();
        for (i, node) in partition.nodes.iter().enumerate() {
            if i == active_idx || node.reports_primary() != Some(true) {
                continue;
            }
            let mut conn = node.lock_conn();
            if let Some(c) = conn.as_mut() {
                match c.request(&format!("DEMOTE {active_addr}")) {
                    Ok(r) if r.starts_with('+') => {
                        ClusterStats::add(&stats.demotions, 1);
                        node.meta.lock().reports_primary = Some(false);
                    }
                    _ => node.mark_down_locked(&mut conn, &self.connect, stats),
                }
            }
        }

        // Chain repair: a replica following an upstream that is not an up
        // node of this partition (its chain parent crashed, or a stale
        // spec survived a reshard) would never catch up — re-aim it at
        // the active node. Replicas aimed at any up node are left alone:
        // that is exactly what a configured deep chain looks like, and
        // re-aiming only onto the active node can never form a cycle.
        for (i, node) in partition.nodes.iter().enumerate() {
            if i == active_idx || !node.is_up() || node.reports_primary() != Some(false) {
                continue;
            }
            let aimed_at_live = node.reported_following().is_some_and(|upstream| {
                partition
                    .nodes
                    .iter()
                    .any(|n| n.is_up() && n.addr == upstream)
            });
            if aimed_at_live {
                continue;
            }
            let mut conn = node.lock_conn();
            if let Some(c) = conn.as_mut() {
                match c.request(&format!("DEMOTE {active_addr}")) {
                    Ok(r) if r.starts_with('+') => {
                        ClusterStats::add(&stats.demotions, 1);
                        node.meta.lock().following = Some(active_addr.clone());
                    }
                    _ => node.mark_down_locked(&mut conn, &self.connect, stats),
                }
            }
        }
    }

    /// Quorum-aware failover for a partition whose active node is down:
    /// probes *every* standby in the chain, then promotes the live one
    /// with the highest applied sequence — which must still clear the
    /// promotion floor, so a uniformly lagging chain is never promoted
    /// (`None`: better refuse churn than lose acked records).
    ///
    /// Candidates are ranked in trust tiers before sequence: reconciled
    /// followers first, then followers whose stream was down at the probe
    /// (`connected 0` — possibly a rejoined ex-primary that has not
    /// reconciled its history yet), and nodes still *answering as
    /// primary* last. A restarted ex-primary's sequence can be inflated
    /// by a divergent unacked suffix, so ranking by raw sequence would
    /// actively prefer the one node whose extra records are untrustworthy
    /// and lose churn acked by the real primary since; it is promoted
    /// only when no follower candidate clears the floor. On success
    /// the floor is raised to the winner's sequence (it is the new
    /// durable head; folding the *unpromoted* candidates in would be
    /// wrong — a divergent ex-primary's inflated seq could wedge every
    /// later failover) and the surviving standbys are best-effort
    /// re-aimed at the winner with `DEMOTE`, collapsing the chain by one
    /// hop. Called from the sweep and inline from the routing paths; the
    /// promote lock serializes them. Callers must not hold any node
    /// connection lock.
    pub fn try_failover(&self, partition: &Partition, stats: &ClusterStats) -> Option<usize> {
        let _guard = partition.promote_lock.lock();
        let active_idx = partition.active_index();
        if partition.nodes[active_idx].is_up() {
            // Raced with another failover (or a reconnect); already served.
            return Some(active_idx);
        }
        let floor = partition.last_primary_seq();
        // (trust tier, node index, reported seq); lower tier = more
        // trustworthy history.
        let mut candidates: Vec<(u8, usize, u64)> = Vec::new();
        for (i, node) in partition.nodes.iter().enumerate() {
            if i == active_idx {
                continue;
            }
            let mut conn = node.lock_conn();
            if conn.is_none() {
                // Bounded blackout beats backoff politeness here: one
                // immediate dial, ignoring the sweep's retry schedule.
                let one_shot = ConnectOptions {
                    attempts: 1,
                    ..self.connect.clone()
                };
                match BackendConn::connect(&node.addr, &one_shot) {
                    Ok(c) => {
                        *conn = Some(c);
                        let mut meta = node.meta.lock();
                        if meta.attempt > 0 {
                            meta.reconnects += 1;
                            ClusterStats::add(&stats.backend_reconnects, 1);
                        }
                        meta.attempt = 0;
                    }
                    Err(_) => continue,
                }
            }
            let c = conn.as_mut().expect("dialed above");
            match c.request("ROLE") {
                Ok(r) if r.starts_with('+') => {
                    if let Ok(report) = protocol::parse_role_report(&r) {
                        let tier = if report.primary {
                            2 // un-demoted ex-primary: seq untrustworthy
                        } else if report.connected == 0 {
                            1 // replica, history not (re)verified upstream
                        } else {
                            0 // reconciled follower
                        };
                        candidates.push((tier, i, report.seq));
                    }
                }
                _ => node.mark_down_locked(&mut conn, &self.connect, stats),
            }
        }
        // Most-trusted tier first; within a tier highest applied sequence,
        // ties breaking toward the earlier (closer-to-primary) chain
        // position. The floor still gates every tier, so a lower-tier
        // winner never misses acked churn — it only discards an
        // ex-primary's unacknowledged (possibly divergent) suffix.
        candidates.sort_by_key(|&(tier, i, seq)| (tier, std::cmp::Reverse(seq), i));
        let mut winner = None;
        for (_, i, seq) in candidates {
            if seq < floor {
                continue; // a later (lower-trust) tier may still qualify
            }
            let node = &partition.nodes[i];
            let mut conn = node.lock_conn();
            let Some(c) = conn.as_mut() else { continue };
            match c.request("PROMOTE") {
                Ok(r) if r.starts_with('+') => {
                    node.record_role(
                        0,
                        &protocol::RoleReport {
                            primary: true,
                            seq,
                            lag: 0,
                            connected: 0,
                            acked: seq,
                            following: None,
                        },
                    );
                    partition.active.store(i, Ordering::SeqCst);
                    partition.raise_floor(seq);
                    ClusterStats::add(&stats.failovers, 1);
                    ClusterStats::add(&stats.promotions, 1);
                    winner = Some(i);
                    break;
                }
                _ => node.mark_down_locked(&mut conn, &self.connect, stats),
            }
        }
        let winner_idx = winner?;
        // Re-aim the surviving standbys at the new primary. Best effort:
        // a failure here just leaves the standby for the next sweep's
        // reconcile pass to chase.
        let winner_addr = partition.nodes[winner_idx].addr.clone();
        for (i, node) in partition.nodes.iter().enumerate() {
            if i == winner_idx || i == active_idx || !node.is_up() {
                continue;
            }
            let mut conn = node.lock_conn();
            if let Some(c) = conn.as_mut() {
                match c.request(&format!("DEMOTE {winner_addr}")) {
                    Ok(r) if r.starts_with('+') => {
                        ClusterStats::add(&stats.demotions, 1);
                        node.meta.lock().reports_primary = Some(false);
                    }
                    _ => node.mark_down_locked(&mut conn, &self.connect, stats),
                }
            }
        }
        Some(winner_idx)
    }

    /// The `TOPOLOGY` report: one line per node in partition order (the
    /// partition's active node first), then one `summary` line per
    /// partition showing the cached prune summary's epoch and populated
    /// bucket count (`none` when scatter is in full-fan-out fallback).
    pub fn topology_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for partition in self.partitions() {
            let active_idx = partition.active_index();
            let active_seq = partition.nodes[active_idx].reported_seq();
            let chain_len = partition.nodes.len().saturating_sub(1);
            let mut chain_pos = 0;
            for (i, node) in partition.nodes.iter().enumerate() {
                if i != active_idx {
                    chain_pos += 1;
                }
                out.push(node.topology_line(i == active_idx, chain_pos, chain_len, active_seq));
            }
            let status = partition
                .summary_status()
                .map(|(epoch, bits)| format!("epoch {epoch} bits {bits}"))
                .unwrap_or_else(|| "none".into());
            out.push(format!("summary {} {status}", partition.index));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fast_options() -> ConnectOptions {
        ConnectOptions {
            connect_timeout: Some(Duration::from_millis(200)),
            attempts: 1,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..ConnectOptions::default()
        }
    }

    const PROBE: Duration = Duration::from_millis(200);

    #[test]
    fn unreachable_backends_start_down_and_backoff() {
        // Port 1 refuses instantly; both backends stay down.
        let stats = ClusterStats::default();
        let membership = Membership::connect_all(
            &["127.0.0.1:1".into(), "127.0.0.1:1".into()],
            fast_options(),
            PROBE,
            &stats,
        );
        assert_eq!(membership.len(), 2);
        assert_eq!(membership.up_count(), 0);
        let lines = membership.topology_lines();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("down"), "{}", lines[0]);
        assert_eq!(lines[1], "summary 0 none");
        assert!(lines[2].starts_with("backend 1 "), "{}", lines[2]);
        // Sweeping again respects (and eventually passes) the backoff.
        std::thread::sleep(Duration::from_millis(10));
        membership.sweep(&stats);
        assert_eq!(membership.up_count(), 0);
    }

    #[test]
    fn route_follows_the_ring_contract() {
        // Pinned against `apcm_server::ring`'s GOLDEN_THREE placements:
        // the router and a backend's `RESHARD` scope must place every id
        // identically or migration would strand subscriptions.
        let stats = ClusterStats::default();
        let membership = Membership::connect_all(
            &["a".into(), "b".into(), "c".into()],
            fast_options(),
            PROBE,
            &stats,
        );
        const GOLDEN_THREE: [usize; 16] = [2, 0, 2, 1, 1, 0, 2, 0, 2, 1, 2, 0, 0, 1, 2, 0];
        let ring = membership.ring();
        for (id, &want) in GOLDEN_THREE.iter().enumerate() {
            let routed = membership.route(SubId(id as u32)).expect("member present");
            assert_eq!(routed.index, want, "id {id}");
            assert_eq!(ring.route(SubId(id as u32)) as usize, want, "id {id}");
        }
    }

    #[test]
    fn add_and_remove_partition_keep_indices_stable() {
        let stats = ClusterStats::default();
        let membership =
            Membership::connect_all(&["127.0.0.1:1".into()], fast_options(), PROBE, &stats);
        let spec = BackendSpec::standalone("127.0.0.1:1");
        assert_eq!(membership.add_partition(&spec, &stats), 1);
        assert_eq!(membership.add_partition(&spec, &stats), 2);
        assert_eq!(membership.len(), 3);
        let removed = membership.remove_partition(1).expect("present");
        assert_eq!(removed.index, 1);
        assert!(membership.remove_partition(1).is_none());
        // Index 1 is never reused: the next join gets a fresh member id,
        // so a stale ring csv can never alias onto a different backend.
        assert_eq!(membership.add_partition(&spec, &stats), 3);
        assert!(membership.partition_for_member(2).is_some());
        assert!(membership.partition_for_member(1).is_none());
    }

    #[test]
    fn stalled_probe_hits_the_deadline_and_marks_down() {
        // A bound listener that never accepts still completes the TCP
        // handshake (backlog), so the dial succeeds and `ROLE` stalls —
        // exactly the failure mode the per-probe deadline exists for.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let stats = ClusterStats::default();
        let probe = Duration::from_millis(50);
        let started = Instant::now();
        let membership = Membership::connect_all(&[addr], fast_options(), probe, &stats);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "sweep wedged on a stalled backend: {:?}",
            started.elapsed()
        );
        assert_eq!(membership.up_count(), 0);
        assert!(ClusterStats::get(&stats.backend_probe_timeouts) >= 1);
        assert!(ClusterStats::get(&stats.backend_errors) >= 1);
        drop(listener);
    }

    /// A minimal scripted backend: answers every `ROLE` probe with the
    /// given line and `+OK` to anything else, one thread per connection.
    /// The accept thread leaks for the remainder of the test process —
    /// fine for a unit test.
    fn scripted_backend(role_line: &'static str) -> String {
        use std::io::{BufRead, Write};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        let reply = if line.starts_with("ROLE") {
                            role_line
                        } else {
                            "+OK"
                        };
                        if writer.write_all(format!("{reply}\n").as_bytes()).is_err() {
                            return;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn follower_reads_gated_by_floor_connection_and_role() {
        let stats = ClusterStats::default();
        let primary = scripted_backend("+OK role primary seq 10 followers 3 lag 7 acked 3");
        let ready = scripted_backend("+OK role replica of x applied 10 connected 1");
        let lagging = scripted_backend("+OK role replica of x applied 3 connected 1");
        let detached = scripted_backend("+OK role replica of x applied 10 connected 0");
        let membership = Membership::connect_replicated(
            &[BackendSpec::chain(primary, vec![ready, lagging, detached])],
            fast_options(),
            PROBE,
            &stats,
        );
        // The sweep's reconcile folds the primary's probed seq into the
        // promotion floor.
        membership.sweep(&stats);
        let partition = membership.route(SubId(0)).expect("partition");
        assert_eq!(partition.last_primary_seq(), 10);

        // Only node 1 clears every gate: a follower (role), with its
        // history reconciled (`connected 1`), at or past the floor. The
        // lagging and detached followers never serve.
        for _ in 0..4 {
            assert_eq!(partition.choose_read_follower(), FollowerRead::Serve(1));
        }

        // A summary is trusted from the active node or a read-eligible
        // follower — never from a below-floor one.
        let bits = FixedBitSet::new(8);
        for (node, accepted) in [(0, true), (1, true), (2, false), (3, false)] {
            let (generation, _) = partition.summary_refresh_token(node);
            partition.store_summary(generation, node, 1, bits.clone());
            assert_eq!(
                partition.summary_for_scatter().is_some(),
                accepted,
                "summary tagged node {node}"
            );
            partition.invalidate_summary();
        }

        // A churn ack carrying seq 11 lands between sweeps: the floor
        // must cover it *immediately*, so the follower probed as caught
        // up at 10 stops serving reads (and its summary stops being
        // trusted) until a fresh probe proves it past the record.
        partition.record_churn_ack(Some(11));
        assert_eq!(partition.last_primary_seq(), 11);
        assert_eq!(partition.choose_read_follower(), FollowerRead::BelowFloor);
        let (generation, _) = partition.summary_refresh_token(1);
        partition.store_summary(generation, 1, 2, bits);
        assert!(partition.summary_for_scatter().is_none());
    }

    #[test]
    fn seq_carrying_acks_anchor_the_floor_to_the_primary_log() {
        // The restart-against-existing-data hole: a fresh router probes a
        // primary already at seq 100, so its lifetime ack count (0, 1,
        // 2, ...) can never catch the probe between sweeps. Because acks
        // carry the appended record's own sequence, the floor covers the
        // acked record the moment the ack returns.
        let partition = Partition::new(0, &BackendSpec::replicated("a", "b"));
        partition.raise_floor(100); // the sweep's probe
        assert_eq!(partition.last_primary_seq(), 100);
        partition.record_churn_ack(Some(101));
        assert_eq!(partition.last_primary_seq(), 101);
        // Replies observed out of order can never lower the floor.
        partition.record_churn_ack(Some(50));
        assert_eq!(partition.last_primary_seq(), 101);
        // Seq-less acks (non-persistent backend) still count as records.
        partition.record_churn_ack(None);
        assert_eq!(partition.last_primary_seq(), 101);
    }

    #[test]
    fn follower_read_fallback_cases() {
        let stats = ClusterStats::default();
        // Standalone: nothing to read from but the primary.
        let membership = Membership::connect_replicated(
            &[BackendSpec::standalone("127.0.0.1:1")],
            fast_options(),
            PROBE,
            &stats,
        );
        let partition = membership.route(SubId(0)).expect("partition");
        assert_eq!(partition.choose_read_follower(), FollowerRead::NoFollowers);

        // A live follower stuck below the floor: the guard (not chance)
        // rejects it, which the caller counts as a floor fallback.
        let primary = scripted_backend("+OK role primary seq 10 followers 1 lag 7 acked 3");
        let lagging = scripted_backend("+OK role replica of x applied 3 connected 1");
        let membership = Membership::connect_replicated(
            &[BackendSpec::chain(primary, vec![lagging])],
            fast_options(),
            PROBE,
            &stats,
        );
        membership.sweep(&stats);
        let partition = membership.route(SubId(0)).expect("partition");
        assert_eq!(partition.last_primary_seq(), 10);
        assert_eq!(partition.choose_read_follower(), FollowerRead::BelowFloor);
    }

    #[test]
    fn replicated_partitions_report_both_nodes() {
        let stats = ClusterStats::default();
        let membership = Membership::connect_replicated(
            &[BackendSpec::replicated("127.0.0.1:1", "127.0.0.1:1")],
            fast_options(),
            PROBE,
            &stats,
        );
        assert_eq!(membership.len(), 1);
        assert_eq!(membership.node_count(), 2);
        assert_eq!(membership.nodes_up(), 0);
        let lines = membership.topology_lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("role=primary"), "{}", lines[0]);
        assert!(lines[1].contains("role=chain[1/1]"), "{}", lines[1]);
        assert!(lines[1].starts_with("backend 0 "), "{}", lines[1]);
        assert!(lines[2].starts_with("summary 0 "), "{}", lines[2]);
    }

    #[test]
    fn late_store_after_invalidation_is_dropped() {
        // The store-after-invalidate race: a sweep captures its refresh
        // token, a concurrent routed SUB ack invalidates the cache, and
        // the sweep's reply (fetched before the SUB landed) arrives late.
        // Installing it would re-cache a stale subset and let scatter
        // prune a backend that now holds a match, so the generation fence
        // must reject it.
        let partition = Partition::new(0, &BackendSpec::standalone("127.0.0.1:1"));
        let bits = FixedBitSet::new(8);

        // Clean path: store against an untouched token installs.
        let (generation, cached) = partition.summary_refresh_token(0);
        assert_eq!(cached, None);
        partition.store_summary(generation, 0, 1, bits.clone());
        assert_eq!(partition.summary_status(), Some((1, 0)));
        assert_eq!(partition.summary_refresh_token(0), (generation, Some(1)));

        // Raced path: invalidation between token capture and store.
        let (generation, _) = partition.summary_refresh_token(0);
        partition.invalidate_summary();
        partition.store_summary(generation, 0, 2, bits.clone());
        assert_eq!(partition.summary_status(), None, "late store re-cached");
        assert!(partition.summary_for_scatter().is_none());

        // The next sweep (fresh token) repopulates normally.
        let (generation, cached) = partition.summary_refresh_token(0);
        assert_eq!(cached, None);
        partition.store_summary(generation, 0, 3, bits);
        assert_eq!(partition.summary_status(), Some((3, 0)));
    }

    #[test]
    fn failover_without_standbys_reports_none() {
        let stats = ClusterStats::default();
        let membership =
            Membership::connect_all(&["127.0.0.1:1".into()], fast_options(), PROBE, &stats);
        let partitions = membership.partitions();
        assert!(membership.try_failover(&partitions[0], &stats).is_none());
        assert_eq!(ClusterStats::get(&stats.failovers), 0);
    }

    #[test]
    fn churn_acks_raise_the_promotion_floor() {
        let stats = ClusterStats::default();
        let membership = Membership::connect_replicated(
            &[BackendSpec::replicated("127.0.0.1:1", "127.0.0.1:1")],
            fast_options(),
            PROBE,
            &stats,
        );
        let partitions = membership.partitions();
        let partition = &partitions[0];
        assert_eq!(partition.last_primary_seq(), 0);
        partition.record_churn_ack(None);
        partition.record_churn_ack(None);
        assert_eq!(partition.last_primary_seq(), 2);
    }

    #[test]
    fn failover_prefers_reconciled_follower_over_divergent_ex_primary() {
        // The designated primary is dead; the standbys are a restarted
        // ex-primary still answering as primary with an inflated,
        // divergent sequence, and a reconciled follower. Raw seq ranking
        // would promote the divergent node and lose the churn the real
        // primary acked since — the trust tiers must pick the follower.
        let stats = ClusterStats::default();
        let ex_primary = scripted_backend("+OK role primary seq 99 followers 0 lag 0 acked 99");
        let follower = scripted_backend("+OK role replica of x applied 10 connected 1");
        let membership = Membership::connect_replicated(
            &[BackendSpec::chain(
                "127.0.0.1:1",
                vec![ex_primary, follower],
            )],
            fast_options(),
            PROBE,
            &stats,
        );
        let partition = &membership.partitions()[0];
        assert_eq!(partition.active_index(), 2, "follower must win promotion");
        assert!(ClusterStats::get(&stats.promotions) >= 1);
    }

    #[test]
    fn failover_falls_back_to_ex_primary_when_no_follower_qualifies() {
        let stats = ClusterStats::default();
        let ex_primary = scripted_backend("+OK role primary seq 99 followers 0 lag 0 acked 99");
        let membership = Membership::connect_replicated(
            &[BackendSpec::chain("127.0.0.1:1", vec![ex_primary])],
            fast_options(),
            PROBE,
            &stats,
        );
        let partition = &membership.partitions()[0];
        assert_eq!(partition.active_index(), 1, "sole survivor still serves");
    }

    #[test]
    fn failover_prefers_stream_verified_follower_over_detached_one() {
        // Both standbys answer as replicas, but only one has a live
        // (history-verified) stream; a detached replica may be a demoted
        // ex-primary that has not reconciled yet, so its higher applied
        // seq must not outrank the verified one when both clear the floor.
        let stats = ClusterStats::default();
        let detached = scripted_backend("+OK role replica of x applied 9 connected 0");
        let verified = scripted_backend("+OK role replica of x applied 5 connected 1");
        let membership = Membership::connect_replicated(
            &[BackendSpec::chain("127.0.0.1:1", vec![detached, verified])],
            fast_options(),
            PROBE,
            &stats,
        );
        let partition = &membership.partitions()[0];
        assert_eq!(partition.active_index(), 2, "verified follower wins");
    }
}
