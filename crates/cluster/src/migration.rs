//! Live partition migration — the control plane of elastic resharding.
//!
//! A migration moves the ring share of one member between backends while
//! the cluster keeps serving churn and matches. It decomposes into *legs*,
//! one per (donor, puller) pair:
//!
//! * `RESHARD ADD` (scale-out): the new member `T` pulls from every
//!   existing member — legs `(d₀→T), (d₁→T), …`, driven sequentially.
//! * `RESHARD REMOVE` (scale-in): the leaving member `R` drains onto
//!   every survivor — legs `(R→r₀), (R→r₁), …`.
//!
//! Each leg runs the same state machine, advanced one step per health
//! tick by [`MigrationController::tick`]:
//!
//! ```text
//! Pending ──PRUNE puller + PULL──▶ CatchUp ──cursor ≥ donor seq──▶
//! DoubleWrite ──cursor ≥ donor seq──▶ Flipped ──in-flight drained,
//! cursor ≥ final donor seq──▶ CUTOFF puller, PRUNE donor ──▶ Done
//! ```
//!
//! Phase semantics on the router's churn path (see `router::route_churn`):
//! during `Pending`/`CatchUp` the donor alone is written (the pull stream
//! carries the churn over); during `DoubleWrite` the donor's ack stays
//! authoritative and a best-effort copy goes to the puller (shrinking the
//! cursor gap the flip must wait out); from `Flipped` on, moved ids write
//! to the puller only.
//!
//! **Why CUTOFF comes before the donor PRUNE:** pruning appends durable
//! `UNSUB` records for every moved id to the donor's churn log. A puller
//! still attached to that log would stream and apply them — deleting
//! every subscription it just migrated. So the flip sequence is: stop
//! routing churn to the donor (`Flipped`), drain in-flight double-writes
//! (the `in_flight` gauge, raised *before* the phase is read, so the
//! controller can never observe zero while a write it must wait for is in
//! progress), take a *fresh* `ROLE` probe of the donor — every acked
//! record happens-before the probe's reply, so its sequence is the
//! donor's final word — wait for the puller's cursor to pass it, cut the
//! puller off, and only then prune the donor.
//!
//! Either side may die mid-leg. The controller self-heals from observed
//! state alone: a puller answering `reshard idle` (restarted, or a
//! promoted standby with no runner state) or pulling from a stale donor
//! address (the donor failed over) gets the leg re-issued — `PRUNE` then
//! `PULL`, both idempotent; the pull scope is unchanged so a surviving
//! cursor is kept, and the donor's old-ring scope bounds the bootstrap
//! reconcile so re-pulls never delete ids absorbed from earlier legs.

use crate::backend::BackendConn;
use crate::membership::{BackendSpec, Membership};
use crate::stats::ClusterStats;
use apcm_bexpr::SubId;
use apcm_server::client::ConnectOptions;
use apcm_server::{protocol, Ring};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Leg phases, ordered: comparisons like `p >= FLIPPED` are meaningful.
pub mod phase {
    pub const PENDING: u8 = 0;
    pub const CATCH_UP: u8 = 1;
    pub const DOUBLE_WRITE: u8 = 2;
    pub const FLIPPED: u8 = 3;
    pub const DONE: u8 = 4;

    pub fn name(p: u8) -> &'static str {
        match p {
            PENDING => "pending",
            CATCH_UP => "catch-up",
            DOUBLE_WRITE => "double-write",
            FLIPPED => "flipped",
            DONE => "done",
            _ => "unknown",
        }
    }
}

/// One (donor → puller) transfer within a migration.
pub struct Leg {
    /// Ring member the ids move away from.
    pub donor: u32,
    /// Ring member the ids move onto.
    pub puller: u32,
    phase: AtomicU8,
    /// Double-writes currently in progress on router churn threads. The
    /// flip waits for zero *after* the phase store, and writers raise it
    /// *before* the phase load (both `SeqCst`), so every copy the cutoff
    /// handshake must cover is either drained or routed to the puller.
    in_flight: AtomicU64,
}

impl Leg {
    fn new(donor: u32, puller: u32) -> Self {
        Self {
            donor,
            puller,
            phase: AtomicU8::new(phase::PENDING),
            in_flight: AtomicU64::new(0),
        }
    }

    pub fn phase(&self) -> u8 {
        self.phase.load(Ordering::SeqCst)
    }

    fn set_phase(&self, p: u8) {
        self.phase.store(p, Ordering::SeqCst);
    }

    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Registers an intent to double-write and returns the phase to act
    /// on. Callers must pair with [`Self::exit_double_write`] whatever the
    /// returned phase — the raise-then-read order is what makes the
    /// drain-wait in the flip sound.
    pub fn enter_double_write(&self) -> u8 {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.phase.load(Ordering::SeqCst)
    }

    pub fn exit_double_write(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What the migration is doing to the member set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationKind {
    /// Scale-out: member `new` joins and pulls its share from everyone.
    Add { new: u32 },
    /// Scale-in: member `target` drains onto the survivors and leaves.
    Remove { target: u32 },
}

/// One in-flight migration: the before/after rings and the legs between
/// them. Immutable except for per-leg atomics, so the router's churn path
/// reads it lock-free behind one `Arc` load.
pub struct ActiveMigration {
    pub kind: MigrationKind,
    pub old_ring: Arc<Ring>,
    pub new_ring: Arc<Ring>,
    pub legs: Vec<Arc<Leg>>,
}

impl ActiveMigration {
    /// The leg moving ids from `donor` to `puller`, if this migration has
    /// one. Ids whose old/new placements match have no leg — they never
    /// move.
    pub fn leg(&self, donor: u32, puller: u32) -> Option<&Arc<Leg>> {
        self.legs
            .iter()
            .find(|l| l.donor == donor && l.puller == puller)
    }

    /// The ring member whose backend currently holds the authoritative
    /// subscription state for `id`: the donor until the leg flips, the
    /// puller after. Scatter filters each backend's match rows by this, so
    /// a mid-catch-up puller (or a flipped-away donor awaiting its prune)
    /// can never leak stale matches into merged rows.
    pub fn authority(&self, id: SubId) -> u32 {
        let old = self.old_ring.route(id);
        let new = self.new_ring.route(id);
        if old == new {
            return old;
        }
        match self.leg(old, new).map(|l| l.phase()) {
            Some(p) if p >= phase::FLIPPED => new,
            _ => old,
        }
    }

    fn describe(&self) -> String {
        match self.kind {
            MigrationKind::Add { new } => format!("add {new}"),
            MigrationKind::Remove { target } => format!("remove {target}"),
        }
    }
}

/// Per-leg driving state, owned by the tick (the health thread is the
/// only caller, but the lock keeps a concurrent `RESHARD STATUS` honest).
struct TickState {
    /// Index of the leg currently being driven.
    current: usize,
    /// Consecutive ticks the puller reported `connected 0` for the
    /// current leg; three in a row re-issues the pull.
    disconnects: u32,
    /// Whether the current leg's pull was ever issued — re-issues after
    /// this count as restarts.
    issued: bool,
}

/// Drives migrations to completion, one tick per health sweep. All
/// decisions are made from freshly observed backend state (`RESHARD
/// STATUS` on the puller, `ROLE` on the donor), so the controller
/// tolerates either side dying and being replaced by a promoted standby
/// mid-leg.
pub struct MigrationController {
    state: RwLock<Option<Arc<ActiveMigration>>>,
    progress: Mutex<TickState>,
    /// One-shot dial policy for control-plane commands. Deliberately not
    /// the membership's pooled connections: a wedged scatter holding a
    /// node's connection lock must not stall migration progress.
    connect: ConnectOptions,
}

/// The puller's `RESHARD STATUS` reply, parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PullStatus {
    Idle,
    Pulling {
        source: String,
        applied: u64,
        connected: bool,
    },
}

fn parse_pull_status(reply: &str) -> Result<PullStatus, String> {
    let rest = reply
        .strip_prefix("+OK reshard ")
        .ok_or_else(|| format!("unexpected reshard status `{reply}`"))?;
    if rest.trim() == "idle" {
        return Ok(PullStatus::Idle);
    }
    let mut parts = rest.split_whitespace();
    let bad = || format!("unexpected reshard status `{reply}`");
    if parts.next() != Some("pulling") {
        return Err(bad());
    }
    let source = parts.next().ok_or_else(bad)?.to_string();
    if parts.next() != Some("applied") {
        return Err(bad());
    }
    let applied: u64 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    if parts.next() != Some("connected") {
        return Err(bad());
    }
    let connected = parts.next() == Some("1");
    Ok(PullStatus::Pulling {
        source,
        applied,
        connected,
    })
}

fn keep_csv(members: &[u32]) -> String {
    if members.is_empty() {
        return "-".into();
    }
    members
        .iter()
        .map(|m| m.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

impl MigrationController {
    pub fn new(connect: ConnectOptions) -> Self {
        Self {
            state: RwLock::new(None),
            progress: Mutex::new(TickState {
                current: 0,
                disconnects: 0,
                issued: false,
            }),
            connect: ConnectOptions {
                connect_timeout: Some(Duration::from_millis(500)),
                read_timeout: Some(Duration::from_secs(1)),
                attempts: 1,
                ..connect
            },
        }
    }

    /// The in-flight migration, if any. The router's churn and scatter
    /// paths call this once per request and work off the snapshot.
    pub fn active(&self) -> Option<Arc<ActiveMigration>> {
        self.state.read().clone()
    }

    /// Starts a scale-out: registers a backend pair for `spec` and plans
    /// one leg from every existing member onto the new one.
    pub fn start_add(
        &self,
        membership: &Membership,
        spec: &BackendSpec,
        stats: &ClusterStats,
    ) -> Result<u32, String> {
        let mut state = self.state.write();
        if state.is_some() {
            return Err("a migration is already active".into());
        }
        let old_ring = membership.ring();
        let new = membership.add_partition(spec, stats);
        let mut members = old_ring.members().to_vec();
        members.push(new);
        let new_ring = Arc::new(Ring::new(&members));
        let legs = old_ring
            .members()
            .iter()
            .map(|&d| Arc::new(Leg::new(d, new)))
            .collect();
        *state = Some(Arc::new(ActiveMigration {
            kind: MigrationKind::Add { new },
            old_ring,
            new_ring,
            legs,
        }));
        self.reset_progress();
        ClusterStats::add(&stats.reshards_started, 1);
        Ok(new)
    }

    /// Starts a scale-in: plans one leg from `target` onto every
    /// surviving member. The partition itself is dropped from membership
    /// only when the last leg completes.
    pub fn start_remove(
        &self,
        membership: &Membership,
        target: u32,
        stats: &ClusterStats,
    ) -> Result<(), String> {
        let mut state = self.state.write();
        if state.is_some() {
            return Err("a migration is already active".into());
        }
        let old_ring = membership.ring();
        if !old_ring.contains(target) {
            return Err(format!("partition {target} is not a ring member"));
        }
        if old_ring.members().len() < 2 {
            return Err("cannot remove the last partition".into());
        }
        if membership.partition_for_member(target).is_none() {
            return Err(format!("partition {target} is not in the membership table"));
        }
        let members: Vec<u32> = old_ring
            .members()
            .iter()
            .copied()
            .filter(|&m| m != target)
            .collect();
        let new_ring = Arc::new(Ring::new(&members));
        let legs = members
            .iter()
            .map(|&r| Arc::new(Leg::new(target, r)))
            .collect();
        *state = Some(Arc::new(ActiveMigration {
            kind: MigrationKind::Remove { target },
            old_ring,
            new_ring,
            legs,
        }));
        self.reset_progress();
        ClusterStats::add(&stats.reshards_started, 1);
        Ok(())
    }

    fn reset_progress(&self) {
        *self.progress.lock() = TickState {
            current: 0,
            disconnects: 0,
            issued: false,
        };
    }

    /// One-line progress report for `RESHARD STATUS` on the router.
    pub fn status_line(&self) -> String {
        let Some(m) = self.active() else {
            return "+OK reshard idle".into();
        };
        let total = m.legs.len();
        let done = m.legs.iter().filter(|l| l.phase() == phase::DONE).count();
        match m.legs.iter().find(|l| l.phase() != phase::DONE) {
            Some(leg) => format!(
                "+OK reshard {} leg {}/{} donor {} puller {} phase {}",
                m.describe(),
                done + 1,
                total,
                leg.donor,
                leg.puller,
                phase::name(leg.phase())
            ),
            None => format!("+OK reshard {} completing", m.describe()),
        }
    }

    /// Advances the active migration by at most one observable step.
    /// Called from the router's health thread right after the sweep, so
    /// partition `active_node` addresses reflect any failover the sweep
    /// just performed.
    pub fn tick(&self, membership: &Membership, stats: &ClusterStats) {
        let Some(m) = self.active() else {
            return;
        };
        let mut progress = self.progress.lock();
        let Some((leg_idx, leg)) = m
            .legs
            .iter()
            .enumerate()
            .find(|(_, l)| l.phase() != phase::DONE)
        else {
            drop(progress);
            self.complete(&m, membership, stats);
            return;
        };
        if leg_idx != progress.current {
            progress.current = leg_idx;
            progress.disconnects = 0;
            progress.issued = false;
        }
        let Some(donor_p) = membership.partition_for_member(leg.donor) else {
            return;
        };
        let Some(puller_p) = membership.partition_for_member(leg.puller) else {
            return;
        };
        let donor_addr = donor_p.active_node().addr.clone();
        let puller_addr = puller_p.active_node().addr.clone();

        match leg.phase() {
            phase::PENDING => {
                let issued = self
                    .issue_pull(&m, leg, &donor_addr, &puller_addr, &mut progress, stats)
                    .is_ok();
                if issued {
                    leg.set_phase(phase::CATCH_UP);
                }
            }
            p @ (phase::CATCH_UP | phase::DOUBLE_WRITE) => {
                if let Some(applied) =
                    self.healthy_pull(&m, leg, &donor_addr, &puller_addr, &mut progress, stats)
                {
                    // Catch-up check against a fresh donor probe. The
                    // donor still takes churn in these phases, so this
                    // chases a moving target — but each pass the gap
                    // only has the churn acked since the last one.
                    if let Ok(donor_seq) = self.donor_seq(&donor_addr) {
                        if applied >= donor_seq {
                            if p == phase::CATCH_UP {
                                leg.set_phase(phase::DOUBLE_WRITE);
                            } else {
                                leg.set_phase(phase::FLIPPED);
                                ClusterStats::add(&stats.reshard_flips, 1);
                            }
                        }
                    }
                }
            }
            phase::FLIPPED => {
                // No new churn reaches the donor now; wait out copies that
                // were mid-flight when the phase flipped.
                if leg.in_flight() != 0 {
                    return;
                }
                let Some(applied) =
                    self.healthy_pull(&m, leg, &donor_addr, &puller_addr, &mut progress, stats)
                else {
                    return;
                };
                // Fresh probe: with churn stopped and double-writes
                // drained, this sequence is the donor's final word.
                let Ok(donor_seq) = self.donor_seq(&donor_addr) else {
                    return;
                };
                if applied < donor_seq {
                    return;
                }
                if self
                    .control(&puller_addr, "RESHARD CUTOFF")
                    .map_err(|e| e.to_string())
                    .and_then(|r| if r.starts_with('+') { Ok(()) } else { Err(r) })
                    .is_err()
                {
                    return;
                }
                // The pulled records raised the puller's log sequence with
                // no router-side acks; fold them into its promotion floor
                // immediately rather than waiting for the next sweep.
                if let Ok(seq) = self.donor_seq(&puller_addr) {
                    puller_p.raise_floor(seq);
                }
                // Only now is it safe to prune: the puller is detached, so
                // the prune's UNSUB records cannot reach it. A failed
                // prune leaves the leg un-done; the retry path sees the
                // puller idle and re-issues the (idempotent) pull first,
                // which is wasteful but converges.
                let prune = format!(
                    "RESHARD PRUNE {} {}",
                    m.new_ring.to_csv(),
                    keep_csv(&self.donor_keep(&m, leg))
                );
                match self.control(&donor_addr, &prune) {
                    Ok(r) if r.starts_with('+') => leg.set_phase(phase::DONE),
                    _ => {}
                }
            }
            _ => {}
        }
    }

    /// The donor's post-leg keep set. Scale-out: the donor keeps its own
    /// (shrunken) new-ring share. Scale-in: the leaving member keeps only
    /// what the *remaining* legs still have to drain, ending at `-`.
    fn donor_keep(&self, m: &ActiveMigration, leg: &Leg) -> Vec<u32> {
        match m.kind {
            MigrationKind::Add { .. } => vec![leg.donor],
            MigrationKind::Remove { .. } => m
                .legs
                .iter()
                .filter(|l| l.puller != leg.puller && l.phase() != phase::DONE)
                .map(|l| l.puller)
                .collect(),
        }
    }

    /// Confirms the puller is actively pulling from the current donor
    /// address and returns its applied cursor; otherwise heals (re-issue
    /// on idle / stale source / three straight disconnected ticks) and
    /// returns `None` for this tick.
    fn healthy_pull(
        &self,
        m: &ActiveMigration,
        leg: &Leg,
        donor_addr: &str,
        puller_addr: &str,
        progress: &mut TickState,
        stats: &ClusterStats,
    ) -> Option<u64> {
        let reply = self.control(puller_addr, "RESHARD STATUS").ok()?;
        match parse_pull_status(&reply).ok()? {
            PullStatus::Idle => {
                // Runner state lost: the puller restarted or a standby was
                // promoted. Re-issue; scope is unchanged so nothing is
                // double-applied.
                let _ = self.issue_pull(m, leg, donor_addr, puller_addr, progress, stats);
                None
            }
            PullStatus::Pulling {
                source,
                applied,
                connected,
            } => {
                if source != donor_addr {
                    // The donor failed over; re-aim at the promoted node.
                    let _ = self.issue_pull(m, leg, donor_addr, puller_addr, progress, stats);
                    return None;
                }
                if !connected {
                    progress.disconnects += 1;
                    if progress.disconnects >= 3 {
                        let _ = self.issue_pull(m, leg, donor_addr, puller_addr, progress, stats);
                    }
                    return None;
                }
                progress.disconnects = 0;
                Some(applied)
            }
        }
    }

    /// Installs the puller's ownership scope (a pure loosening, by ring
    /// monotonicity: the puller's new-ring share contains everything it
    /// already holds) and starts — or restarts — the pull.
    fn issue_pull(
        &self,
        m: &ActiveMigration,
        leg: &Leg,
        donor_addr: &str,
        puller_addr: &str,
        progress: &mut TickState,
        stats: &ClusterStats,
    ) -> Result<(), String> {
        let new_members = m.new_ring.to_csv();
        let prune = format!("RESHARD PRUNE {new_members} {}", leg.puller);
        let pull = format!(
            "RESHARD PULL {donor_addr} {new_members} {} {} {}",
            leg.puller,
            m.old_ring.to_csv(),
            leg.donor
        );
        for line in [&prune, &pull] {
            match self.control(puller_addr, line) {
                Ok(r) if r.starts_with('+') => {}
                Ok(r) => return Err(r),
                Err(e) => return Err(e.to_string()),
            }
        }
        if progress.issued {
            ClusterStats::add(&stats.reshard_pull_restarts, 1);
        }
        progress.issued = true;
        progress.disconnects = 0;
        Ok(())
    }

    /// A backend's current churn log sequence, from a fresh `ROLE` probe
    /// over a one-shot connection.
    fn donor_seq(&self, addr: &str) -> Result<u64, String> {
        let reply = self.control(addr, "ROLE").map_err(|e| e.to_string())?;
        protocol::parse_role_report(&reply).map(|r| r.seq)
    }

    fn control(&self, addr: &str, line: &str) -> std::io::Result<String> {
        let mut conn = BackendConn::connect(addr, &self.connect)?;
        conn.request(line)
    }

    /// All legs are done: swap the routing ring, drop a drained partition,
    /// and clear the migration.
    fn complete(&self, m: &Arc<ActiveMigration>, membership: &Membership, stats: &ClusterStats) {
        let mut state = self.state.write();
        // Only the tick completes migrations; if the state changed under
        // us a new migration was started by an admin racing the tick.
        let still_ours = state.as_ref().is_some_and(|cur| Arc::ptr_eq(cur, m));
        if !still_ours {
            return;
        }
        membership.set_ring(m.new_ring.clone());
        if let MigrationKind::Remove { target } = m.kind {
            membership.remove_partition(target);
        }
        // Every backend's subscription set may have changed (pullers
        // absorbed moved ids, donors pruned them), so no cached summary
        // is trustworthy. Invalidate them all *before* clearing the state:
        // scatter only re-enables pruning once it observes `active() ==
        // None`, and that observation is sequenced after these drops.
        for partition in membership.partitions() {
            partition.invalidate_summary();
        }
        *state = None;
        ClusterStats::add(&stats.reshards_completed, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_options() -> ConnectOptions {
        ConnectOptions {
            connect_timeout: Some(Duration::from_millis(200)),
            attempts: 1,
            ..ConnectOptions::default()
        }
    }

    fn dead_membership(n: usize) -> (Membership, ClusterStats) {
        let stats = ClusterStats::default();
        let addrs: Vec<String> = (0..n).map(|_| "127.0.0.1:1".into()).collect();
        let membership =
            Membership::connect_all(&addrs, fast_options(), Duration::from_millis(100), &stats);
        (membership, stats)
    }

    #[test]
    fn add_plans_one_leg_per_existing_member() {
        let (membership, stats) = dead_membership(2);
        let controller = MigrationController::new(fast_options());
        let new = controller
            .start_add(&membership, &BackendSpec::standalone("127.0.0.1:1"), &stats)
            .expect("start");
        assert_eq!(new, 2);
        let m = controller.active().expect("active");
        assert_eq!(m.kind, MigrationKind::Add { new: 2 });
        let pairs: Vec<(u32, u32)> = m.legs.iter().map(|l| (l.donor, l.puller)).collect();
        assert_eq!(pairs, vec![(0, 2), (1, 2)]);
        assert_eq!(m.new_ring.members(), &[0, 1, 2]);
        assert_eq!(membership.len(), 3);
        assert_eq!(ClusterStats::get(&stats.reshards_started), 1);
        // A second migration is refused while this one is active.
        assert!(controller
            .start_remove(&membership, 0, &stats)
            .unwrap_err()
            .contains("already active"));
    }

    #[test]
    fn remove_plans_one_leg_per_survivor_and_guards() {
        let (membership, stats) = dead_membership(3);
        let controller = MigrationController::new(fast_options());
        assert!(controller
            .start_remove(&membership, 7, &stats)
            .unwrap_err()
            .contains("not a ring member"));
        controller
            .start_remove(&membership, 1, &stats)
            .expect("start");
        let m = controller.active().expect("active");
        let pairs: Vec<(u32, u32)> = m.legs.iter().map(|l| (l.donor, l.puller)).collect();
        assert_eq!(pairs, vec![(1, 0), (1, 2)]);
        assert_eq!(m.new_ring.members(), &[0, 2]);
    }

    #[test]
    fn remove_refuses_the_last_member() {
        let (membership, stats) = dead_membership(1);
        let controller = MigrationController::new(fast_options());
        assert!(controller
            .start_remove(&membership, 0, &stats)
            .unwrap_err()
            .contains("last partition"));
    }

    #[test]
    fn authority_follows_the_leg_phase() {
        let (membership, stats) = dead_membership(2);
        let controller = MigrationController::new(fast_options());
        controller
            .start_add(&membership, &BackendSpec::standalone("127.0.0.1:1"), &stats)
            .expect("start");
        let m = controller.active().expect("active");
        // Find an id that moves on some leg.
        let moved = (0..10_000u32)
            .map(SubId)
            .find(|&id| m.old_ring.route(id) != m.new_ring.route(id))
            .expect("vnode ring moves some id");
        let old = m.old_ring.route(moved);
        let new = m.new_ring.route(moved);
        let leg = m.leg(old, new).expect("leg exists");
        assert_eq!(m.authority(moved), old);
        leg.set_phase(phase::DOUBLE_WRITE);
        assert_eq!(m.authority(moved), old);
        leg.set_phase(phase::FLIPPED);
        assert_eq!(m.authority(moved), new);
        leg.set_phase(phase::DONE);
        assert_eq!(m.authority(moved), new);
        // An unmoved id is owned by its (identical) placement throughout.
        let still = (0..10_000u32)
            .map(SubId)
            .find(|&id| m.old_ring.route(id) == m.new_ring.route(id))
            .expect("most ids stay");
        assert_eq!(m.authority(still), m.old_ring.route(still));
    }

    #[test]
    fn donor_keep_shrinks_leg_by_leg_on_remove() {
        let (membership, stats) = dead_membership(3);
        let controller = MigrationController::new(fast_options());
        controller
            .start_remove(&membership, 1, &stats)
            .expect("start");
        let m = controller.active().expect("active");
        // While draining onto member 0, the leaving donor still keeps the
        // share destined for member 2; after the last leg it keeps nothing.
        assert_eq!(controller.donor_keep(&m, &m.legs[0]), vec![2]);
        m.legs[0].set_phase(phase::DONE);
        assert_eq!(controller.donor_keep(&m, &m.legs[1]), Vec::<u32>::new());
        assert_eq!(keep_csv(&[]), "-");
    }

    #[test]
    fn pull_status_parses_both_shapes() {
        assert_eq!(parse_pull_status("+OK reshard idle"), Ok(PullStatus::Idle));
        assert_eq!(
            parse_pull_status("+OK reshard pulling 127.0.0.1:7001 applied 42 connected 1"),
            Ok(PullStatus::Pulling {
                source: "127.0.0.1:7001".into(),
                applied: 42,
                connected: true,
            })
        );
        assert!(parse_pull_status("-ERR nope").is_err());
        assert!(parse_pull_status("+OK reshard pulling x applied y connected 1").is_err());
    }

    #[test]
    fn in_flight_gauge_pairs_enter_and_exit() {
        let leg = Leg::new(0, 1);
        leg.set_phase(phase::DOUBLE_WRITE);
        assert_eq!(leg.enter_double_write(), phase::DOUBLE_WRITE);
        assert_eq!(leg.in_flight(), 1);
        leg.exit_double_write();
        assert_eq!(leg.in_flight(), 0);
    }

    #[test]
    fn completion_swaps_ring_and_drops_removed_partition() {
        let (membership, stats) = dead_membership(3);
        let controller = MigrationController::new(fast_options());
        controller
            .start_remove(&membership, 2, &stats)
            .expect("start");
        let m = controller.active().expect("active");
        for leg in &m.legs {
            leg.set_phase(phase::DONE);
        }
        controller.tick(&membership, &stats);
        assert!(controller.active().is_none());
        assert_eq!(membership.ring().members(), &[0, 1]);
        assert_eq!(membership.len(), 2);
        assert!(membership.partition_for_member(2).is_none());
        assert_eq!(ClusterStats::get(&stats.reshards_completed), 1);
        assert_eq!(controller.status_line(), "+OK reshard idle");
    }
}
