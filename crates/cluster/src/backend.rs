//! One synchronous protocol connection from the router to a backend shard
//! server.
//!
//! The router serializes all traffic on a backend connection behind a
//! mutex (see [`crate::membership::Backend`]), so a request/response here
//! never interleaves with another thread's command: after a command line
//! is written, the next `+`/`-` line on the wire is its reply.
//! Asynchronous `RESULT` lines are consumed only inside
//! [`BackendConn::publish_window`] (where the whole window is collected
//! under the same lock), and `EVENT` notifications are discarded — the
//! router synthesizes its own notifications from merged rows, so backend
//! ownership is irrelevant to delivery.

use apcm_bexpr::SubId;
use apcm_server::client::{connect_stream, ConnectOptions};
use apcm_server::protocol;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

pub struct BackendConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl BackendConn {
    /// Dials `addr` under `options` (the caller decides attempts/backoff;
    /// the health sweep passes a single-attempt clone and schedules retries
    /// itself).
    pub fn connect(addr: &str, options: &ConnectOptions) -> std::io::Result<Self> {
        let stream = connect_stream(addr, options)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Re-arms the socket's read deadline. The health sweep tightens it to
    /// the probe timeout around each `ROLE` probe (so a stalled-but-open
    /// backend cannot wedge the sweep) and restores the request timeout
    /// afterwards; `None` blocks forever.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends one command line and returns its `+`/`-` reply verbatim,
    /// skipping any stray asynchronous lines.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.send_line(line)?;
        loop {
            let reply = self.read_line()?;
            if reply.starts_with("RESULT ") || reply.starts_with("EVENT ") {
                continue;
            }
            return Ok(reply);
        }
    }

    /// Publishes one window of pre-rendered event lines as a `BATCH` and
    /// collects this backend's row for every event, in window order.
    ///
    /// The backend acknowledges `+OK batch <first> <accepted>` and then
    /// pushes one `RESULT <seq> ...` per event; seqs are contiguous from
    /// `<first>` because every line the router sends was already parsed
    /// against the shared schema. A `RESULT` that races ahead of the ack
    /// (the backend's ingest workers flush windows on their own threads)
    /// is buffered and indexed once `<first>` is known. Any `-ERR` or seq
    /// gap is surfaced as an I/O error, which the caller treats as a
    /// backend failure.
    pub fn publish_window(&mut self, event_lines: &[String]) -> std::io::Result<Vec<Vec<SubId>>> {
        let n = event_lines.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        self.send_line(&format!("BATCH {n}"))?;
        for line in event_lines {
            self.send_line(line)?;
        }

        fn place(
            rows: &mut [Option<Vec<SubId>>],
            seen: &mut usize,
            first: u64,
            seq: u64,
            ids: Vec<SubId>,
        ) -> std::io::Result<()> {
            let index = seq
                .checked_sub(first)
                .filter(|&i| (i as usize) < rows.len())
                .ok_or_else(|| std::io::Error::other(format!("RESULT seq {seq} outside batch")))?
                as usize;
            if rows[index].replace(ids).is_none() {
                *seen += 1;
            }
            Ok(())
        }

        let mut first = None;
        let mut early: Vec<(u64, Vec<SubId>)> = Vec::new();
        let mut rows: Vec<Option<Vec<SubId>>> = vec![None; n];
        let mut seen = 0usize;
        while first.is_none() || seen < n {
            let line = self.read_line()?;
            if line.starts_with("RESULT ") {
                let (seq, ids, _) =
                    protocol::parse_result_ext(&line).map_err(std::io::Error::other)?;
                match first {
                    Some(first) => place(&mut rows, &mut seen, first, seq, ids)?,
                    None => {
                        if early.len() >= n {
                            return Err(std::io::Error::other("RESULT flood before the batch ack"));
                        }
                        early.push((seq, ids));
                    }
                }
            } else if let Some(rest) = line.strip_prefix("+OK batch ") {
                let mut parts = rest.split_whitespace();
                let start: u64 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| std::io::Error::other("bad batch ack"))?;
                let accepted: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| std::io::Error::other("bad batch ack"))?;
                if accepted != n {
                    return Err(std::io::Error::other(format!(
                        "backend accepted {accepted} of {n} events"
                    )));
                }
                first = Some(start);
                for (seq, ids) in early.drain(..) {
                    place(&mut rows, &mut seen, start, seq, ids)?;
                }
            } else if line.starts_with("-ERR") {
                return Err(std::io::Error::other(line));
            }
            // EVENT notifications for router-owned ids are discarded.
        }
        Ok(rows.into_iter().map(|r| r.expect("seen == n")).collect())
    }
}
