//! LEB128 variable-length integers — the number encoding for every
//! columnar field (counts, dictionary ids, id deltas, footer offsets).
//! Small values (the overwhelmingly common case for dictionary ids and
//! id deltas) cost one byte.

use crate::{corrupt, ColError};

/// Appends `v` to `buf` as LEB128 (7 bits per byte, high bit = continue).
pub fn put(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 value at `*pos`, advancing it. Rejects truncated and
/// over-long (>10 byte / overflowing) encodings.
pub fn take(buf: &[u8], pos: &mut usize) -> Result<u64, ColError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or_else(|| corrupt("truncated varint"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(corrupt("varint overflows u64"));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt("varint longer than 10 bytes"));
        }
    }
}

/// `take` + checked conversion to `usize` with an upper bound — decoders
/// use it for counts so corrupt bytes cannot drive huge allocations.
pub fn take_len(buf: &[u8], pos: &mut usize, max: usize) -> Result<usize, ColError> {
    let v = take(buf, pos)?;
    if v > max as u64 {
        return Err(corrupt(format!("length {v} exceeds bound {max}")));
    }
    Ok(v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            put(&mut buf, v);
            let mut pos = 0;
            assert_eq!(take(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn single_byte_for_small_values() {
        let mut buf = Vec::new();
        put(&mut buf, 127);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert!(take(&[0x80, 0x80], &mut pos).is_err());
        // 11 continuation bytes can never terminate inside u64.
        let over = [0xFFu8; 11];
        pos = 0;
        assert!(take(&over, &mut pos).is_err());
    }

    #[test]
    fn take_len_bounds_counts() {
        let mut buf = Vec::new();
        put(&mut buf, 1_000_000);
        let mut pos = 0;
        assert!(take_len(&buf, &mut pos, 1000).is_err());
    }
}
