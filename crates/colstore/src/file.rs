//! Snapshot container (format v2): magic, CRC-framed compressed blocks,
//! and a footer index so readers can project by partition or id range
//! without decoding the whole file.
//!
//! ```text
//! "APCM2COL"                                  8-byte magic
//! block*:  header(20B LE: partition, rows,    frame per block; payload is
//!          raw_len, comp_len, crc32(comp))    the LZSS-compressed column
//!          + comp_len payload bytes           bytes of `block::encode_block`
//! footer:  kind, seq, partitions, included[], varint-encoded; one index
//!          index[{offset, comp_len, raw_len,  entry per block, plus the
//!          partition, rows, min_id, max_id,   schema lines the broker
//!          crc}], total_subs, schema_lines[]  validates on recovery
//! trailer: footer_len u32 LE, crc32(footer)   fixed 16 bytes — readers
//!          u32 LE, "APCMEND2"                 find the footer from EOF
//! ```
//!
//! Writing splits *prepare* ([`prepare_partition`] — columnarize and
//! build dictionaries, safe to run per-partition in parallel) from
//! *compress + write + fsync* ([`compress_block`] / [`write_file`]), so
//! the broker can capture its catalog under lock, release it, and do all
//! the heavy work while churn acks keep flowing.

use crate::block::{decode_block, encode_block, Row};
use crate::failpoint::{self, FailAction};
use crate::{corrupt, crc::crc32, lz, varint, ColError};
use std::fs::File;
use std::io::Write;
use std::path::Path;

pub const MAGIC: &[u8; 8] = b"APCM2COL";
pub const END_MAGIC: &[u8; 8] = b"APCMEND2";
const BLOCK_HEADER_BYTES: usize = 20;
const TRAILER_BYTES: usize = 16;

/// Rows per block. Large enough that per-block dictionaries amortize
/// across repeated predicates, small enough that one block base64s to a
/// bootstrap wire line below the broker's 1 MiB line cap even if the
/// payload doesn't compress at all (~450 KiB raw → ~600 KiB base64).
pub const DEFAULT_BLOCK_ROWS: usize = 4096;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Complete catalog image; every partition present.
    Full,
    /// Re-serialized images of only the partitions dirtied since the
    /// previous chain element (`included` lists them — possibly with
    /// zero blocks, when a partition churned down to empty).
    Delta,
}

/// Output of the prepare phase: one uncompressed columnar payload.
#[derive(Debug)]
pub struct PreparedBlock {
    pub partition: u32,
    pub rows: u32,
    pub min_id: u64,
    pub max_id: u64,
    pub raw: Vec<u8>,
}

/// A prepared block after compression — ready to frame into a file or
/// base64 onto the bootstrap wire.
#[derive(Debug, Clone)]
pub struct CompressedBlock {
    pub partition: u32,
    pub rows: u32,
    pub min_id: u64,
    pub max_id: u64,
    pub raw_len: u32,
    /// CRC-32 of the compressed payload (what's on disk / on the wire).
    pub crc: u32,
    pub data: Vec<u8>,
}

/// Columnarizes one partition's sorted rows into `block_rows`-sized
/// prepared blocks. Pure CPU on immutable input — the broker fans this
/// out per partition on scoped threads.
pub fn prepare_partition(
    partition: u32,
    rows: &[Row],
    block_rows: usize,
) -> Result<Vec<PreparedBlock>, ColError> {
    let block_rows = block_rows.max(1);
    let mut out = Vec::with_capacity(rows.len().div_ceil(block_rows));
    for chunk in rows.chunks(block_rows) {
        out.push(PreparedBlock {
            partition,
            rows: chunk.len() as u32,
            min_id: chunk.first().map(|r| r.id).unwrap_or(0),
            max_id: chunk.last().map(|r| r.id).unwrap_or(0),
            raw: encode_block(chunk)?,
        });
    }
    Ok(out)
}

/// The compress half of the write path (also pure CPU).
pub fn compress_block(block: PreparedBlock) -> CompressedBlock {
    let data = lz::compress(&block.raw);
    CompressedBlock {
        partition: block.partition,
        rows: block.rows,
        min_id: block.min_id,
        max_id: block.max_id,
        raw_len: block.raw.len() as u32,
        crc: crc32(&data),
        data,
    }
}

impl CompressedBlock {
    /// CRC check + decompress + columnar decode.
    pub fn decode(&self) -> Result<Vec<Row>, ColError> {
        if crc32(&self.data) != self.crc {
            return Err(corrupt(format!(
                "block crc mismatch (partition {}, rows {})",
                self.partition, self.rows
            )));
        }
        let raw = lz::decompress(&self.data, self.raw_len as usize)?;
        let rows = decode_block(&raw)?;
        if rows.len() != self.rows as usize {
            return Err(corrupt(format!(
                "block row count lied: header {} decoded {}",
                self.rows,
                rows.len()
            )));
        }
        Ok(rows)
    }

    fn frame(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BLOCK_HEADER_BYTES + self.data.len());
        out.extend_from_slice(&self.partition.to_le_bytes());
        out.extend_from_slice(&self.rows.to_le_bytes());
        out.extend_from_slice(&self.raw_len.to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.crc.to_le_bytes());
        out.extend_from_slice(&self.data);
        out
    }
}

/// Everything about a snapshot file except the blocks themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    pub kind: SnapshotKind,
    /// Churn sequence this snapshot is consistent at.
    pub seq: u64,
    /// Partition count the writer routed with — readers regroup when it
    /// differs from the serving shard count.
    pub partitions: u32,
    /// Partitions this file covers. For a full: `0..partitions`. For a
    /// delta: the dirtied set, including partitions now empty.
    pub included: Vec<u32>,
    /// Opaque schema description lines, validated by the broker against
    /// the serving schema on recovery (colstore itself doesn't parse them).
    pub schema_lines: Vec<String>,
    pub total_subs: u64,
}

/// One block as read back from a file: the index entry plus the
/// compressed payload, decodable independently (and in parallel).
pub type LoadedBlock = CompressedBlock;

#[derive(Debug)]
pub struct LoadedFile {
    pub meta: FileMeta,
    pub blocks: Vec<LoadedBlock>,
}

/// Whether `bytes` start a colstore snapshot (the format sniff recovery
/// uses to dispatch between the text v1 and binary v2 loaders).
pub fn is_colstore(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC
}

/// Writes a complete snapshot file to `path` (the caller's tmp path —
/// atomic publication via rename stays the caller's job) and fsyncs it.
/// Returns bytes written.
///
/// The `colstore.block.write` failpoint guards every block frame:
/// `Error` fails before the frame, `TornWrite(n)` writes `n` real bytes
/// of it then fails (a torn tmp file the rename never publishes), and
/// `Stall(ms)` sleeps then proceeds — used to stretch the compress+fsync
/// phase and prove churn acks keep flowing through it.
pub fn write_file(
    path: &Path,
    meta: &FileMeta,
    blocks: &[CompressedBlock],
) -> std::io::Result<u64> {
    let mut file = File::create(path)?;
    let mut written = 0u64;
    file.write_all(MAGIC)?;
    written += MAGIC.len() as u64;

    let mut index: Vec<(u64, &CompressedBlock)> = Vec::with_capacity(blocks.len());
    for block in blocks {
        let frame = block.frame();
        match failpoint::fire("colstore.block.write") {
            Some(FailAction::Error) => {
                return Err(failpoint::injected_error("colstore.block.write"))
            }
            Some(FailAction::TornWrite(n)) => {
                file.write_all(&frame[..n.min(frame.len())])?;
                let _ = file.sync_data();
                return Err(failpoint::injected_error("colstore.block.write"));
            }
            Some(FailAction::Stall(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            None => {}
        }
        index.push((written, block));
        file.write_all(&frame)?;
        written += frame.len() as u64;
    }

    let mut footer = Vec::with_capacity(64 + index.len() * 16);
    varint::put(
        &mut footer,
        match meta.kind {
            SnapshotKind::Full => 0,
            SnapshotKind::Delta => 1,
        },
    );
    varint::put(&mut footer, meta.seq);
    varint::put(&mut footer, u64::from(meta.partitions));
    varint::put(&mut footer, meta.included.len() as u64);
    for &p in &meta.included {
        varint::put(&mut footer, u64::from(p));
    }
    varint::put(&mut footer, index.len() as u64);
    for (offset, block) in &index {
        varint::put(&mut footer, *offset);
        varint::put(&mut footer, block.data.len() as u64);
        varint::put(&mut footer, u64::from(block.raw_len));
        varint::put(&mut footer, u64::from(block.partition));
        varint::put(&mut footer, u64::from(block.rows));
        varint::put(&mut footer, block.min_id);
        varint::put(&mut footer, block.max_id);
        varint::put(&mut footer, u64::from(block.crc));
    }
    varint::put(&mut footer, meta.total_subs);
    varint::put(&mut footer, meta.schema_lines.len() as u64);
    for line in &meta.schema_lines {
        varint::put(&mut footer, line.len() as u64);
        footer.extend_from_slice(line.as_bytes());
    }

    file.write_all(&footer)?;
    written += footer.len() as u64;
    file.write_all(&(footer.len() as u32).to_le_bytes())?;
    file.write_all(&crc32(&footer).to_le_bytes())?;
    file.write_all(END_MAGIC)?;
    written += TRAILER_BYTES as u64;
    file.sync_data()?;
    Ok(written)
}

/// Parses an in-memory snapshot image. Block payloads are sliced out by
/// the footer index; nothing is decompressed here — callers decode the
/// blocks they want (typically all, in parallel, at recovery).
pub fn parse_file(bytes: &[u8]) -> Result<LoadedFile, ColError> {
    if !is_colstore(bytes) {
        return Err(corrupt("missing APCM2COL magic"));
    }
    if bytes.len() < MAGIC.len() + TRAILER_BYTES {
        return Err(corrupt("file shorter than magic + trailer"));
    }
    let trailer = &bytes[bytes.len() - TRAILER_BYTES..];
    if &trailer[8..] != END_MAGIC {
        return Err(corrupt("missing APCMEND2 end magic (torn file)"));
    }
    let footer_len = u32::from_le_bytes(trailer[..4].try_into().unwrap()) as usize;
    let footer_crc = u32::from_le_bytes(trailer[4..8].try_into().unwrap());
    let footer_end = bytes.len() - TRAILER_BYTES;
    let footer_start = footer_end
        .checked_sub(footer_len)
        .filter(|&s| s >= MAGIC.len())
        .ok_or_else(|| corrupt("footer length overruns file"))?;
    let footer = &bytes[footer_start..footer_end];
    if crc32(footer) != footer_crc {
        return Err(corrupt("footer crc mismatch"));
    }

    let mut pos = 0usize;
    let kind = match varint::take(footer, &mut pos)? {
        0 => SnapshotKind::Full,
        1 => SnapshotKind::Delta,
        other => return Err(corrupt(format!("unknown snapshot kind {other}"))),
    };
    let seq = varint::take(footer, &mut pos)?;
    let partitions = varint::take(footer, &mut pos)? as u32;
    let included_len = varint::take_len(footer, &mut pos, 1 << 20)?;
    let mut included = Vec::with_capacity(included_len);
    for _ in 0..included_len {
        included.push(varint::take(footer, &mut pos)? as u32);
    }
    let n_blocks = varint::take_len(footer, &mut pos, 1 << 24)?;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let offset = varint::take(footer, &mut pos)? as usize;
        let comp_len = varint::take_len(footer, &mut pos, bytes.len())?;
        let raw_len = varint::take(footer, &mut pos)? as u32;
        let partition = varint::take(footer, &mut pos)? as u32;
        let rows = varint::take(footer, &mut pos)? as u32;
        let min_id = varint::take(footer, &mut pos)?;
        let max_id = varint::take(footer, &mut pos)?;
        let crc = varint::take(footer, &mut pos)? as u32;
        let data_start = offset
            .checked_add(BLOCK_HEADER_BYTES)
            .filter(|&s| s + comp_len <= footer_start)
            .ok_or_else(|| corrupt("block index entry overruns data section"))?;
        // Cross-check the on-disk block header against the index entry:
        // the header isn't needed to slice the payload, but a mismatch
        // means the data section was damaged under a still-valid footer.
        let header = &bytes[offset..data_start];
        let field = |at: usize| u32::from_le_bytes(header[at..at + 4].try_into().unwrap());
        if field(0) != partition
            || field(4) != rows
            || field(8) != raw_len
            || field(12) as usize != comp_len
            || field(16) != crc
        {
            return Err(corrupt("block header disagrees with footer index"));
        }
        blocks.push(CompressedBlock {
            partition,
            rows,
            min_id,
            max_id,
            raw_len,
            crc,
            data: bytes[data_start..data_start + comp_len].to_vec(),
        });
    }
    let total_subs = varint::take(footer, &mut pos)?;
    let n_lines = varint::take_len(footer, &mut pos, 1 << 16)?;
    let mut schema_lines = Vec::with_capacity(n_lines);
    for _ in 0..n_lines {
        let len = varint::take_len(footer, &mut pos, footer.len())?;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= footer.len())
            .ok_or_else(|| corrupt("schema line overruns footer"))?;
        let line = std::str::from_utf8(&footer[pos..end])
            .map_err(|_| corrupt("schema line is not utf-8"))?;
        schema_lines.push(line.to_string());
        pos = end;
    }
    if pos != footer.len() {
        return Err(corrupt("trailing garbage in footer"));
    }
    Ok(LoadedFile {
        meta: FileMeta {
            kind,
            seq,
            partitions,
            included,
            schema_lines,
            total_subs,
        },
        blocks,
    })
}

/// Reads and parses a snapshot file; `Ok(None)` when it doesn't exist.
pub fn read_file(path: &Path) -> Result<Option<LoadedFile>, ColError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ColError::Io(e)),
    };
    parse_file(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows(partition: u32, n: u64) -> Vec<Row> {
        (0..n)
            .map(|i| Row {
                id: u64::from(partition) + i * 4 + 1,
                atoms: vec![
                    format!("a{} >= {}", i % 7, i % 13),
                    format!("a{} < {}", (i + 3) % 7, 50 + i % 31),
                ],
            })
            .collect()
    }

    fn build(partitions: u32, per_part: u64) -> (FileMeta, Vec<CompressedBlock>, Vec<Vec<Row>>) {
        let mut blocks = Vec::new();
        let mut all = Vec::new();
        for p in 0..partitions {
            let rows = sample_rows(p, per_part);
            for pb in prepare_partition(p, &rows, 64).unwrap() {
                blocks.push(compress_block(pb));
            }
            all.push(rows);
        }
        let meta = FileMeta {
            kind: SnapshotKind::Full,
            seq: 99,
            partitions,
            included: (0..partitions).collect(),
            schema_lines: vec!["attr a0 0 100".into(), "attr a1 0 100".into()],
            total_subs: partitions as u64 * per_part,
        };
        (meta, blocks, all)
    }

    #[test]
    fn file_round_trips_with_footer_index() {
        let dir = std::env::temp_dir().join(format!("colstore-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.col");
        let (meta, blocks, all) = build(3, 200);
        let bytes = write_file(&path, &meta, &blocks).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());

        let loaded = read_file(&path).unwrap().unwrap();
        assert_eq!(loaded.meta, meta);
        assert_eq!(loaded.blocks.len(), blocks.len());
        for p in 0..3u32 {
            let decoded: Vec<Row> = loaded
                .blocks
                .iter()
                .filter(|b| b.partition == p)
                .flat_map(|b| b.decode().unwrap())
                .collect();
            assert_eq!(decoded, all[p as usize]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let dir = std::env::temp_dir().join(format!("colstore-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.col");
        let meta = FileMeta {
            kind: SnapshotKind::Delta,
            seq: 7,
            partitions: 4,
            included: vec![2],
            schema_lines: vec![],
            total_subs: 0,
        };
        write_file(&path, &meta, &[]).unwrap();
        let loaded = read_file(&path).unwrap().unwrap();
        assert_eq!(loaded.meta, meta);
        assert!(loaded.blocks.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let dir = std::env::temp_dir().join(format!("colstore-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.col");
        let (meta, blocks, _) = build(2, 100);
        write_file(&path, &meta, &blocks).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncation (torn write) fails the trailer check.
        assert!(parse_file(&good[..good.len() - 3]).is_err());
        // A flip in any block payload fails that block's CRC; a flip in
        // the footer fails the footer CRC; either way: error, no panic.
        for i in (8..good.len()).step_by(17) {
            let mut bad = good.clone();
            bad[i] ^= 0x10;
            match parse_file(&bad) {
                Err(_) => {}
                Ok(loaded) => {
                    assert!(
                        loaded.blocks.iter().any(|b| b.decode().is_err()),
                        "flip at byte {i} undetected"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn block_write_failpoint_leaves_torn_tmp() {
        let dir = std::env::temp_dir().join(format!("colstore-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.col");
        let (meta, blocks, _) = build(1, 50);
        failpoint::arm("colstore.block.write", FailAction::TornWrite(9), Some(1));
        assert!(write_file(&path, &meta, &blocks).is_err());
        failpoint::reset();
        // The torn file parses as corrupt, never as a valid snapshot.
        assert!(parse_file(&std::fs::read(&path).unwrap()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
