//! apcm-colstore — block-columnar compressed snapshot store.
//!
//! The durability tier's binary snapshot format (v2): subscriptions are
//! laid out struct-of-arrays in fixed-size blocks — a dictionary-encoded
//! expression-atom column (each predicate string interned once per block,
//! referenced by varint id), a delta+varint-encoded subscription-id
//! column, and a bit-packed presence mask for the variable-arity "rest
//! atoms" column — then each block is independently LZSS-compressed and
//! CRC-framed. A footer index (block offsets, id ranges, partition map)
//! lets recovery and replication read by partition or id range without
//! decoding the whole file, and lets a replication bootstrap ship blocks
//! verbatim (the follower CRC-checks and decodes per block).
//!
//! The crate is deliberately schema-agnostic: a subscription is a sorted
//! `(id, [atom strings])` [`Row`]; the broker renders predicates to atom
//! text on the way in and re-parses on the way out, so one codec serves
//! the snapshot file, delta files, and the bootstrap wire.
//!
//! Modules: [`varint`] (LEB128), [`lz`] (LZSS), [`b64`] (base64 for the
//! newline wire), [`crc`] (CRC-32), [`block`] (columnar codec), [`file`]
//! (snapshot container), [`manifest`] (full+delta chain), [`failpoint`]
//! (fault injection shared with the broker's persistence tier).

pub mod b64;
pub mod block;
pub mod crc;
pub mod failpoint;
pub mod file;
pub mod lz;
pub mod manifest;
pub mod varint;

pub use block::{decode_block, encode_block, Row};
pub use file::{
    compress_block, is_colstore, prepare_partition, read_file, write_file, CompressedBlock,
    FileMeta, LoadedBlock, LoadedFile, PreparedBlock, SnapshotKind, DEFAULT_BLOCK_ROWS,
};
pub use manifest::Manifest;

/// Unified error for the colstore codecs: either real I/O, or bytes that
/// fail structural/CRC validation (always recoverable by falling back to
/// an earlier chain element or the churn log — never a panic).
#[derive(Debug)]
pub enum ColError {
    Io(std::io::Error),
    Corrupt(String),
}

impl std::fmt::Display for ColError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColError::Io(e) => write!(f, "colstore io error: {e}"),
            ColError::Corrupt(why) => write!(f, "colstore corrupt: {why}"),
        }
    }
}

impl std::error::Error for ColError {}

impl From<std::io::Error> for ColError {
    fn from(e: std::io::Error) -> Self {
        ColError::Io(e)
    }
}

/// Shorthand used by every decoder in the crate.
pub(crate) fn corrupt(why: impl Into<String>) -> ColError {
    ColError::Corrupt(why.into())
}
