//! LZSS byte compressor for snapshot block payloads. No external deps:
//! the container can't pull a compression crate, and the payloads it sees
//! (columnarized predicate text + varint columns) are repetitive enough
//! that a 4 KiB-window LZSS with a one-slot hash head gets most of the
//! win a general-purpose codec would.
//!
//! Stream format: groups of up to eight items behind one flag byte (LSB
//! first). Flag bit set → a 2-byte match token: 12-bit `offset-1`
//! (1..=4096 back) and 4-bit `length-3` (3..=18 bytes). Flag bit clear →
//! one literal byte. Decompression needs the expected raw length (carried
//! in the block frame) and fails closed on any overrun.

use crate::{corrupt, ColError};

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
const HASH_BITS: u32 = 13;
/// Candidates examined per position. The hash buckets chain colliding
/// positions; walking a few of them instead of keeping only the newest
/// trades ~2x encode time for a visibly denser stream. Encoder-only —
/// the token format (and so the decoder) is unchanged.
const MAX_CHAIN: usize = 32;

#[inline]
fn hash3(bytes: &[u8]) -> usize {
    let v = (u32::from(bytes[0]) << 16) | (u32::from(bytes[1]) << 8) | u32::from(bytes[2]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`. Worst case (incompressible bytes) the output is
/// `input.len() + ceil(input.len()/8)` — callers that care can compare
/// lengths and keep the raw form, but snapshot payloads never hit it.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    // prev[i] = previous position with the same 3-byte hash, forming
    // per-bucket chains the matcher walks newest-first.
    let mut prev = vec![usize::MAX; input.len()];
    let insert = |head: &mut [usize], prev: &mut [usize], j: usize| {
        let h = hash3(&input[j..]);
        prev[j] = head[h];
        head[h] = j;
    };
    let mut flag_at = usize::MAX;
    let mut flag_bit = 0u8;
    let mut i = 0usize;
    while i < input.len() {
        if flag_bit == 0 {
            flag_at = out.len();
            out.push(0);
        }
        let mut match_len = 0usize;
        let mut match_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let limit = MAX_MATCH.min(input.len() - i);
            let mut cand = head[hash3(&input[i..])];
            let mut steps = 0usize;
            while cand != usize::MAX && i - cand <= WINDOW && steps < MAX_CHAIN {
                let mut len = 0;
                while len < limit && input[cand + len] == input[i + len] {
                    len += 1;
                }
                if len > match_len {
                    match_len = len;
                    match_off = i - cand;
                    if len == limit {
                        break;
                    }
                }
                cand = prev[cand];
                steps += 1;
            }
            insert(&mut head, &mut prev, i);
        }
        if match_len >= MIN_MATCH {
            out[flag_at] |= 1 << flag_bit;
            let off = match_off - 1;
            out.push((off >> 4) as u8);
            out.push((((off & 0xF) << 4) | (match_len - MIN_MATCH)) as u8);
            // Chain in the skipped positions so later matches can still
            // anchor inside this one.
            for j in i + 1..i + match_len {
                if j + MIN_MATCH <= input.len() {
                    insert(&mut head, &mut prev, j);
                }
            }
            i += match_len;
        } else {
            out.push(input[i]);
            i += 1;
        }
        flag_bit = (flag_bit + 1) & 7;
    }
    out
}

/// Decompresses exactly `raw_len` bytes. Any structural problem —
/// truncated stream, back-reference before the start, output overrun —
/// is `ColError::Corrupt`.
pub fn decompress(input: &[u8], raw_len: usize) -> Result<Vec<u8>, ColError> {
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    while out.len() < raw_len {
        let flags = *input
            .get(pos)
            .ok_or_else(|| corrupt("lz stream truncated at flag byte"))?;
        pos += 1;
        for bit in 0..8 {
            if out.len() == raw_len {
                break;
            }
            if flags & (1 << bit) != 0 {
                let b0 = *input
                    .get(pos)
                    .ok_or_else(|| corrupt("lz stream truncated in match"))?;
                let b1 = *input
                    .get(pos + 1)
                    .ok_or_else(|| corrupt("lz stream truncated in match"))?;
                pos += 2;
                let off = ((usize::from(b0) << 4) | (usize::from(b1) >> 4)) + 1;
                let len = usize::from(b1 & 0xF) + MIN_MATCH;
                if off > out.len() {
                    return Err(corrupt("lz back-reference before start of output"));
                }
                if out.len() + len > raw_len {
                    return Err(corrupt("lz match overruns declared raw length"));
                }
                let start = out.len() - off;
                // Byte-by-byte: matches may overlap their own output
                // (run-length style references with offset < length).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                let b = *input
                    .get(pos)
                    .ok_or_else(|| corrupt("lz stream truncated at literal"))?;
                pos += 1;
                if out.len() + 1 > raw_len {
                    return Err(corrupt("lz literal overruns declared raw length"));
                }
                out.push(b);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let packed = compress(data);
        let unpacked = decompress(&packed, data.len()).unwrap();
        assert_eq!(unpacked, data);
    }

    #[test]
    fn round_trips_edges() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
        round_trip(&[0u8; 5000]); // long overlapping run, > window
        round_trip(b"abcabcabcabcabcabcabc"); // overlap with offset < length
    }

    #[test]
    fn compresses_repetitive_text() {
        let text = "a12 >= 375 AND a3 < 99 AND a7 = 4\n".repeat(200);
        let packed = compress(text.as_bytes());
        assert!(
            packed.len() * 4 < text.len(),
            "expected >4x on repetitive text, got {} -> {}",
            text.len(),
            packed.len()
        );
        round_trip(text.as_bytes());
    }

    #[test]
    fn round_trips_pseudo_random_bytes() {
        // xorshift — incompressible input exercises the literal path.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut data = Vec::with_capacity(4096);
        for _ in 0..4096 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            data.push(state as u8);
        }
        round_trip(&data);
    }

    #[test]
    fn rejects_corrupt_streams() {
        let packed = compress(b"hello hello hello hello");
        assert!(decompress(&packed[..packed.len() - 1], 23).is_err());
        assert!(decompress(&packed, 1000).is_err());
        assert!(decompress(&[0x01, 0xFF, 0xFF], 10).is_err()); // offset past start
    }
}
