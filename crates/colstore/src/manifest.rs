//! Snapshot chain manifest: the small text file naming the current full
//! snapshot and the ordered delta files layered on top of it.
//!
//! ```text
//! # apcm-manifest v1
//! partitions 4
//! full snapshot.apcm 120
//! delta snapshot-delta-1.col 158
//! delta snapshot-delta-2.col 171
//! # crc 1a2b3c4d
//! ```
//!
//! The manifest is published tmp+rename after the file it names, so a
//! crash between the two leaves either (a) a new chain element with a
//! stale manifest — readers verify each named file's *internal* seq
//! against the manifest entry and fall back to the bare full snapshot on
//! mismatch — or (b) an orphaned file no manifest names, which is simply
//! ignored. Both windows are safe; neither loses acknowledged churn
//! (deltas never rotate the churn log; only fulls do).

use crate::failpoint::{self, FailAction};
use crate::{corrupt, crc::crc32, ColError};
use std::io::Write;
use std::path::Path;

pub const MANIFEST_FILE: &str = "snapshot.manifest";
const TMP_FILE: &str = "snapshot.manifest.tmp";
const HEADER: &str = "# apcm-manifest v1";

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Partition count the chain was routed with.
    pub partitions: u32,
    /// Full snapshot: file name (within the persist dir) and its seq.
    pub full: (String, u64),
    /// Deltas in application order, oldest first.
    pub deltas: Vec<(String, u64)>,
}

impl Manifest {
    /// Seq the whole chain is consistent at (last delta, else the full).
    pub fn covered_seq(&self) -> u64 {
        self.deltas.last().map(|(_, s)| *s).unwrap_or(self.full.1)
    }
}

/// Writes the manifest tmp+rename with an fsync on both file and
/// directory. The `colstore.manifest.rename` failpoint fires between
/// the tmp write and the rename: `Error` (and any torn variant) removes
/// the tmp and fails, leaving the previous manifest in place.
pub fn write(dir: &Path, manifest: &Manifest) -> std::io::Result<()> {
    let mut body = String::with_capacity(128);
    body.push_str(HEADER);
    body.push('\n');
    body.push_str(&format!("partitions {}\n", manifest.partitions));
    body.push_str(&format!("full {} {}\n", manifest.full.0, manifest.full.1));
    for (name, seq) in &manifest.deltas {
        body.push_str(&format!("delta {name} {seq}\n"));
    }
    let trailer = format!("# crc {:08x}\n", crc32(body.as_bytes()));

    let tmp = dir.join(TMP_FILE);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(body.as_bytes())?;
    file.write_all(trailer.as_bytes())?;
    file.sync_data()?;
    drop(file);
    if let Some(action) = failpoint::fire("colstore.manifest.rename") {
        let _ = std::fs::remove_file(&tmp);
        match action {
            FailAction::Stall(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            _ => return Err(failpoint::injected_error("colstore.manifest.rename")),
        }
    }
    std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads the manifest; `Ok(None)` when absent, `Corrupt` on a bad CRC or
/// malformed body (callers treat both None and Corrupt as "no chain —
/// use the bare snapshot file").
pub fn read(dir: &Path) -> Result<Option<Manifest>, ColError> {
    let text = match std::fs::read_to_string(dir.join(MANIFEST_FILE)) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ColError::Io(e)),
    };
    let trailer_at = text
        .rfind("# crc ")
        .ok_or_else(|| corrupt("manifest missing crc trailer"))?;
    let (body, trailer) = text.split_at(trailer_at);
    let want = trailer
        .trim()
        .strip_prefix("# crc ")
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| corrupt("manifest crc trailer malformed"))?;
    if crc32(body.as_bytes()) != want {
        return Err(corrupt("manifest crc mismatch"));
    }

    let mut lines = body.lines();
    if lines.next() != Some(HEADER) {
        return Err(corrupt("manifest header missing"));
    }
    let mut partitions = None;
    let mut full = None;
    let mut deltas = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("partitions") => {
                partitions = parts.next().and_then(|v| v.parse().ok());
            }
            Some("full") | Some("delta") => {
                let name = parts.next().map(str::to_string);
                let seq = parts.next().and_then(|v| v.parse::<u64>().ok());
                let entry = name
                    .zip(seq)
                    .ok_or_else(|| corrupt(format!("manifest line malformed: {line}")))?;
                if line.starts_with("full") {
                    full = Some(entry);
                } else {
                    deltas.push(entry);
                }
            }
            Some(other) => return Err(corrupt(format!("unknown manifest key {other}"))),
            None => {}
        }
        if parts.next().is_some() {
            return Err(corrupt(format!("trailing tokens on manifest line: {line}")));
        }
    }
    match (partitions, full) {
        (Some(partitions), Some(full)) => Ok(Some(Manifest {
            partitions,
            full,
            deltas,
        })),
        _ => Err(corrupt("manifest missing partitions or full entry")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("colstore-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_and_reports_covered_seq() {
        let dir = tmpdir("rt");
        assert!(read(&dir).unwrap().is_none());
        let m = Manifest {
            partitions: 4,
            full: ("snapshot.apcm".into(), 120),
            deltas: vec![
                ("snapshot-delta-1.col".into(), 158),
                ("snapshot-delta-2.col".into(), 171),
            ],
        };
        write(&dir, &m).unwrap();
        assert_eq!(read(&dir).unwrap().unwrap(), m);
        assert_eq!(m.covered_seq(), 171);
        let no_deltas = Manifest {
            deltas: vec![],
            ..m.clone()
        };
        assert_eq!(no_deltas.covered_seq(), 120);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("bad");
        let m = Manifest {
            partitions: 2,
            full: ("snapshot.apcm".into(), 9),
            deltas: vec![],
        };
        write(&dir, &m).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER.len() + 4] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read(&dir), Err(ColError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rename_failpoint_preserves_previous_manifest() {
        let dir = tmpdir("fp");
        let m1 = Manifest {
            partitions: 2,
            full: ("snapshot.apcm".into(), 5),
            deltas: vec![],
        };
        write(&dir, &m1).unwrap();
        let m2 = Manifest {
            full: ("snapshot.apcm".into(), 50),
            ..m1.clone()
        };
        failpoint::arm("colstore.manifest.rename", FailAction::Error, Some(1));
        assert!(write(&dir, &m2).is_err());
        failpoint::reset();
        assert_eq!(read(&dir).unwrap().unwrap(), m1);
        assert!(!dir.join(TMP_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
