//! CRC-32 (ISO-HDLC, polynomial 0xEDB88320) — the checksum guarding
//! snapshot files and churn-log records. Table-driven, no external deps.

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (init `!0`, final xor `!0` — the common "crc32"
/// everyone from zlib to Ethernet uses).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"apcm"), crc32(b"apcm"));
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"sub 17 a0 = 3 AND a1 >= 5".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {i} bit {bit}");
            }
        }
    }
}
