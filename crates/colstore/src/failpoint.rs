//! Runtime fault-injection registry for the snapshot/persistence write
//! path and the replication stream. It lives here (rather than in the
//! broker) so colstore's own block and manifest writes can fire
//! `colstore.*` failpoints; the broker re-exports this module for its
//! `persist.*` and `repl.*` points, keeping one process-global registry.
//!
//! Tests arm named failpoints to make specific I/O steps fail — or fail
//! *partially* (a torn write), or stall for a bounded time — so crash
//! recovery, replication lag, and mid-stream-disconnect paths can be
//! exercised deterministically without killing the process. Production
//! code pays one mutex-guarded `HashMap` lookup per churn append or
//! replicated record (never on the event matching path); with nothing
//! armed the map is empty.
//!
//! Failpoints are process-global. Tests that arm them must use distinct
//! names or serialize; [`reset`] clears everything.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

/// What an armed failpoint does to the guarded I/O step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Fail with an injected `io::Error` before any bytes are written.
    Error,
    /// Write only the first `n` bytes of the buffer, then fail — simulates
    /// a crash mid-record (a torn tail on disk, or a torn frame on the
    /// replication stream).
    TornWrite(usize),
    /// Sleep this many milliseconds before the guarded step proceeds
    /// normally — simulates a slow disk or a stalled replication feed
    /// (visible as lag, never as an error).
    Stall(u64),
}

struct Armed {
    action: FailAction,
    /// Remaining firings; `None` means sticky (fires forever).
    remaining: Option<u32>,
}

fn registry() -> &'static Mutex<HashMap<String, Armed>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `name` to fire `times` times (`None` = until disarmed).
pub fn arm(name: &str, action: FailAction, times: Option<u32>) {
    registry().lock().insert(
        name.to_string(),
        Armed {
            action,
            remaining: times,
        },
    );
}

/// Disarms one failpoint.
pub fn disarm(name: &str) {
    registry().lock().remove(name);
}

/// Disarms everything (test teardown).
pub fn reset() {
    registry().lock().clear();
}

/// Checks (and consumes one firing of) `name`. Returns the action to apply,
/// or `None` when unarmed.
pub fn fire(name: &str) -> Option<FailAction> {
    let mut reg = registry().lock();
    let armed = reg.get_mut(name)?;
    let action = armed.action;
    match &mut armed.remaining {
        None => {}
        Some(0) => {
            reg.remove(name);
            return None;
        }
        Some(n) => {
            *n -= 1;
            if *n == 0 {
                reg.remove(name);
            }
        }
    }
    Some(action)
}

/// The `io::Error` an injected failure surfaces as.
pub fn injected_error(name: &str) -> std::io::Error {
    std::io::Error::other(format!("injected failure at failpoint `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_once() {
        arm("fp.test.once", FailAction::Error, Some(1));
        assert_eq!(fire("fp.test.once"), Some(FailAction::Error));
        assert_eq!(fire("fp.test.once"), None);
    }

    #[test]
    fn sticky_fires_until_disarmed() {
        arm("fp.test.sticky", FailAction::TornWrite(3), None);
        for _ in 0..4 {
            assert_eq!(fire("fp.test.sticky"), Some(FailAction::TornWrite(3)));
        }
        disarm("fp.test.sticky");
        assert_eq!(fire("fp.test.sticky"), None);
    }

    #[test]
    fn unarmed_is_silent() {
        assert_eq!(fire("fp.test.never-armed"), None);
    }
}
