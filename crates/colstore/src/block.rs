//! Columnar block codec: a run of subscriptions, sorted by id, laid out
//! struct-of-arrays and byte-serialized for compression.
//!
//! Payload layout (all integers LEB128 varints):
//!
//! ```text
//! count                               rows in the block
//! dict_len, {shared, suffix_len,      atom dictionary, sorted; each entry
//!            suffix_bytes}*           front-coded against its predecessor
//! id[0], id[i]-id[i-1] ...            delta-encoded sorted id column
//! primary[count]                      dict id of each row's first atom
//! presence[ceil(count/8)] bytes       bit i set = row i has >1 atom
//! {rest_len, dict_id*}*               rest-atoms column, present rows only
//! ```
//!
//! The dictionary interns every distinct atom string once per block, so
//! rows referencing repeated predicates cost one or two bytes each.
//! Sorting it puts atoms over the same attribute next to each other, and
//! front-coding (store only the suffix past the bytes shared with the
//! previous entry) strips the repeated `attr17 >= ` prefixes before the
//! LZ pass even sees them. The presence mask keeps single-atom
//! subscriptions (the common case in skewed workloads) at zero cost in
//! the variable-arity column.

use crate::{corrupt, varint, ColError};
use std::collections::HashMap;

/// One subscription as colstore sees it: an id plus its predicate atoms
/// rendered to canonical text. Atom order is preserved through a round
/// trip; ids within a block must be strictly ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    pub id: u64,
    pub atoms: Vec<String>,
}

/// Upper bound on atoms per row and dictionary entries per block —
/// generous (blocks hold ~1k rows) but keeps corrupt counts from
/// driving huge allocations.
const MAX_ATOMS: usize = 1 << 20;

/// Serializes sorted `rows` into one uncompressed columnar payload.
pub fn encode_block(rows: &[Row]) -> Result<Vec<u8>, ColError> {
    let mut out = Vec::with_capacity(rows.len() * 8 + 64);
    varint::put(&mut out, rows.len() as u64);

    // Dictionary build: distinct atoms sorted lexicographically, so
    // entries sharing a prefix (same attribute, near-same bounds) sit
    // next to each other — prime territory for the LZ window downstream.
    let mut dict: Vec<&str> = Vec::new();
    let mut dict_ids: HashMap<&str, u64> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 && rows[i - 1].id >= row.id {
            return Err(corrupt("block rows not strictly ascending by id"));
        }
        if row.atoms.is_empty() {
            return Err(corrupt(format!("row {} has no atoms", row.id)));
        }
        for atom in &row.atoms {
            if !dict_ids.contains_key(atom.as_str()) {
                dict_ids.insert(atom.as_str(), 0);
                dict.push(atom.as_str());
            }
        }
    }
    dict.sort_unstable();
    for (i, atom) in dict.iter().enumerate() {
        dict_ids.insert(atom, i as u64);
    }
    let columns: Vec<Vec<u64>> = rows
        .iter()
        .map(|row| {
            row.atoms
                .iter()
                .map(|atom| dict_ids[atom.as_str()])
                .collect()
        })
        .collect();
    varint::put(&mut out, dict.len() as u64);
    let mut prev: &[u8] = b"";
    for atom in &dict {
        let bytes = atom.as_bytes();
        let shared = prev.iter().zip(bytes).take_while(|(a, b)| a == b).count();
        varint::put(&mut out, shared as u64);
        varint::put(&mut out, (bytes.len() - shared) as u64);
        out.extend_from_slice(&bytes[shared..]);
        prev = bytes;
    }

    // Id column: first value, then strictly positive deltas.
    for (i, row) in rows.iter().enumerate() {
        let v = if i == 0 {
            row.id
        } else {
            row.id - rows[i - 1].id
        };
        varint::put(&mut out, v);
    }

    // Primary-atom column.
    for ids in &columns {
        varint::put(&mut out, ids[0]);
    }

    // Presence mask for the rest-atoms column.
    let mut mask = vec![0u8; rows.len().div_ceil(8)];
    for (i, ids) in columns.iter().enumerate() {
        if ids.len() > 1 {
            mask[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&mask);

    // Rest-atoms column, present rows only.
    for ids in &columns {
        if ids.len() > 1 {
            varint::put(&mut out, (ids.len() - 1) as u64);
            for &id in &ids[1..] {
                varint::put(&mut out, id);
            }
        }
    }
    Ok(out)
}

/// Decodes one payload back into rows. Exact inverse of [`encode_block`]:
/// a decode of an encode is byte- and value-identical, and every way the
/// bytes can lie (bad counts, dangling dict ids, trailing garbage) is a
/// `Corrupt` error.
pub fn decode_block(payload: &[u8]) -> Result<Vec<Row>, ColError> {
    let mut pos = 0usize;
    let count = varint::take_len(payload, &mut pos, MAX_ATOMS)?;
    let dict_len = varint::take_len(payload, &mut pos, MAX_ATOMS)?;
    let mut dict: Vec<String> = Vec::with_capacity(dict_len);
    let mut prev: Vec<u8> = Vec::new();
    for _ in 0..dict_len {
        let shared = varint::take_len(payload, &mut pos, prev.len())?;
        let len = varint::take_len(payload, &mut pos, payload.len())?;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| corrupt("dictionary entry overruns payload"))?;
        let mut bytes = prev[..shared].to_vec();
        bytes.extend_from_slice(&payload[pos..end]);
        pos = end;
        let atom =
            std::str::from_utf8(&bytes).map_err(|_| corrupt("dictionary entry is not utf-8"))?;
        dict.push(atom.to_string());
        prev = bytes;
    }
    let atom_at = |id: u64| -> Result<&String, ColError> {
        dict.get(id as usize)
            .ok_or_else(|| corrupt(format!("dict id {id} out of range {dict_len}")))
    };

    let mut ids = Vec::with_capacity(count);
    let mut prev = 0u64;
    for i in 0..count {
        let v = varint::take(payload, &mut pos)?;
        let id = if i == 0 {
            v
        } else {
            if v == 0 {
                return Err(corrupt("zero id delta (duplicate id)"));
            }
            prev.checked_add(v)
                .ok_or_else(|| corrupt("id column overflows u64"))?
        };
        ids.push(id);
        prev = id;
    }

    let mut primaries = Vec::with_capacity(count);
    for _ in 0..count {
        primaries.push(varint::take(payload, &mut pos)?);
    }

    let mask_len = count.div_ceil(8);
    if pos + mask_len > payload.len() {
        return Err(corrupt("presence mask overruns payload"));
    }
    let mask = &payload[pos..pos + mask_len];
    pos += mask_len;
    if count % 8 != 0 && mask_len > 0 && mask[mask_len - 1] >> (count % 8) != 0 {
        return Err(corrupt("presence mask has bits past the row count"));
    }

    let mut rows = Vec::with_capacity(count);
    for i in 0..count {
        let mut atoms = vec![atom_at(primaries[i])?.clone()];
        if mask[i / 8] & (1 << (i % 8)) != 0 {
            let rest = varint::take_len(payload, &mut pos, MAX_ATOMS)?;
            if rest == 0 {
                return Err(corrupt("presence bit set but zero rest atoms"));
            }
            for _ in 0..rest {
                atoms.push(atom_at(varint::take(payload, &mut pos)?)?.clone());
            }
        }
        rows.push(Row { id: ids[i], atoms });
    }
    if pos != payload.len() {
        return Err(corrupt(format!(
            "trailing garbage: {} bytes past end of columns",
            payload.len() - pos
        )));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u64, atoms: &[&str]) -> Row {
        Row {
            id,
            atoms: atoms.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn round_trips_mixed_arity() {
        let rows = vec![
            row(3, &["a0 >= 5"]),
            row(10, &["a0 >= 5", "a1 < 9"]),
            row(11, &["a2 = 4", "a0 >= 5", "a7 != 0"]),
            row(500_000, &["a1 < 9"]),
        ];
        let payload = encode_block(&rows).unwrap();
        assert_eq!(decode_block(&payload).unwrap(), rows);
        // Dictionary interning: 7 atom references, 5 distinct strings.
        let raw: usize = rows.iter().flat_map(|r| &r.atoms).map(|a| a.len()).sum();
        let distinct: usize = ["a0 >= 5", "a1 < 9", "a2 = 4", "a7 != 0"]
            .iter()
            .map(|a| a.len())
            .sum();
        assert!(payload.len() < raw + 32);
        assert!(payload.len() >= distinct);
    }

    #[test]
    fn round_trips_empty_and_single_atom_dictionary() {
        assert_eq!(decode_block(&encode_block(&[]).unwrap()).unwrap(), vec![]);
        let rows: Vec<Row> = (0..100).map(|i| row(i * 7 + 1, &["a0 = 1"])).collect();
        let payload = encode_block(&rows).unwrap();
        assert_eq!(decode_block(&payload).unwrap(), rows);
        // One dict entry + ~2 bytes/row of columns.
        assert!(payload.len() < 100 * 3 + 32, "got {}", payload.len());
    }

    #[test]
    fn rejects_bad_input_rows() {
        assert!(encode_block(&[row(5, &["a"]), row(5, &["b"])]).is_err());
        assert!(encode_block(&[row(9, &["a"]), row(2, &["b"])]).is_err());
        assert!(encode_block(&[row(1, &[])]).is_err());
    }

    #[test]
    fn rejects_corrupt_payload_bytes() {
        let rows = vec![row(1, &["a0 >= 5", "a1 < 9"]), row(2, &["a1 < 9"])];
        let payload = encode_block(&rows).unwrap();
        assert!(decode_block(&payload[..payload.len() - 1]).is_err());
        let mut extra = payload.clone();
        extra.push(0);
        assert!(decode_block(&extra).is_err());
        // Flip every single byte — decode must error or differ, never panic.
        for i in 0..payload.len() {
            let mut bad = payload.clone();
            bad[i] ^= 0x55;
            if let Ok(decoded) = decode_block(&bad) {
                assert_ne!(decoded, rows, "byte {i} flip undetected");
            }
        }
    }
}
