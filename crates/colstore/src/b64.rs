//! Minimal base64 (standard alphabet, `=` padding). The broker's wire is
//! newline-delimited UTF-8 strings, so compressed snapshot blocks ride
//! the replication bootstrap as base64 lines; this is the codec for that
//! one hop. Encode never fails; decode fails closed on any non-alphabet
//! byte, bad padding, or truncation.

use crate::{corrupt, ColError};

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

fn reverse_table() -> [i8; 256] {
    let mut table = [-1i8; 256];
    let mut i = 0;
    while i < 64 {
        table[ALPHABET[i] as usize] = i as i8;
        i += 1;
    }
    table
}

pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let v = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(v >> 18) as usize & 63] as char);
        out.push(ALPHABET[(v >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(v >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[v as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

pub fn decode(text: &str) -> Result<Vec<u8>, ColError> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(corrupt("base64 length not a multiple of 4"));
    }
    let table = reverse_table();
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = quad.iter().rev().take_while(|&&b| b == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err(corrupt("base64 padding in the middle of the stream"));
        }
        let mut v = 0u32;
        for &b in &quad[..4 - pad] {
            let s = table[b as usize];
            if s < 0 {
                return Err(corrupt(format!("base64 byte 0x{b:02x} outside alphabet")));
            }
            v = (v << 6) | s as u32;
        }
        v <<= 6 * pad as u32;
        out.push((v >> 16) as u8);
        if pad < 2 {
            out.push((v >> 8) as u8);
        }
        if pad < 1 {
            out.push(v as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn round_trips_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1021).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode("Zm9").is_err()); // bad length
        assert!(decode("Zm!=").is_err()); // outside alphabet
        assert!(decode("Zg==Zg==").is_err()); // padding mid-stream
        assert!(decode("Z===").is_err()); // over-padded
    }
}
