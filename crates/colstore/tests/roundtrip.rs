//! Property tests: arbitrary subscription sets survive the full columnar
//! pipeline — encode → decode value-identical, and decode → re-encode
//! byte-identical — including empty partitions, empty blocks, and
//! single-atom dictionaries; plus raw LZSS byte-stream round trips.

use apcm_colstore::file::{compress_block, prepare_partition, write_file, FileMeta, SnapshotKind};
use apcm_colstore::{decode_block, encode_block, lz, read_file, Row};
use proptest::prelude::*;

/// Builds sorted-unique-id rows from free-form (gap, atom-picks) pairs.
/// Atoms come from a small pool (dictionary sharing) plus a synthesized
/// unique one (dictionary growth), arity 1..=4.
fn rows_from(seed: Vec<(u64, u8)>) -> Vec<Row> {
    const POOL: [&str; 5] = ["a0 >= 5", "a1 < 977", "a2 = 4", "a17 != 12", "a3 <= 100000"];
    let mut id = 0u64;
    seed.into_iter()
        .enumerate()
        .map(|(i, (gap, pick))| {
            id += gap % 1000 + 1;
            let arity = (pick % 4) as usize + 1;
            let atoms = (0..arity)
                .map(|k| {
                    if (pick as usize + k).is_multiple_of(7) {
                        format!("a{} > {}", i % 31, u64::from(pick) * 13 + k as u64)
                    } else {
                        POOL[(pick as usize + k) % POOL.len()].to_string()
                    }
                })
                .collect();
            Row { id, atoms }
        })
        .collect()
}

proptest! {
    #[test]
    fn block_codec_round_trips(seed in proptest::collection::vec((0u64..10_000, 0u8..255), 0..300)) {
        let rows = rows_from(seed);
        let payload = encode_block(&rows).unwrap();
        let decoded = decode_block(&payload).unwrap();
        prop_assert_eq!(&decoded, &rows);
        // Re-encoding the decode reproduces the exact bytes: the layout
        // is canonical (first-use dictionary order, delta ids).
        prop_assert_eq!(encode_block(&decoded).unwrap(), payload);
    }

    #[test]
    fn snapshot_file_round_trips(
        seed in proptest::collection::vec((0u64..500, 0u8..255), 0..400),
        partitions in 1u32..6,
        block_rows in 1usize..80,
    ) {
        let rows = rows_from(seed);
        let mut by_part: Vec<Vec<Row>> = vec![Vec::new(); partitions as usize];
        for row in &rows {
            by_part[(row.id % u64::from(partitions)) as usize].push(row.clone());
        }
        let mut blocks = Vec::new();
        for (p, part_rows) in by_part.iter().enumerate() {
            // Empty partitions contribute no blocks but stay `included`.
            for pb in prepare_partition(p as u32, part_rows, block_rows).unwrap() {
                blocks.push(compress_block(pb));
            }
        }
        let meta = FileMeta {
            kind: SnapshotKind::Full,
            seq: rows.len() as u64,
            partitions,
            included: (0..partitions).collect(),
            schema_lines: vec!["attr a0 0 100".into()],
            total_subs: rows.len() as u64,
        };
        let dir = std::env::temp_dir().join(format!(
            "colstore-prop-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prop.col");
        write_file(&path, &meta, &blocks).unwrap();
        let loaded = read_file(&path).unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(&loaded.meta, &meta);
        let mut decoded: Vec<Row> = Vec::new();
        for p in 0..partitions {
            for b in loaded.blocks.iter().filter(|b| b.partition == p) {
                decoded.extend(b.decode().unwrap());
            }
        }
        decoded.sort_by_key(|r| r.id);
        let mut want = rows.clone();
        want.sort_by_key(|r| r.id);
        prop_assert_eq!(decoded, want);
    }

    #[test]
    fn lz_round_trips_arbitrary_bytes(data in proptest::collection::vec(0u8..255, 0..2000)) {
        let packed = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&packed, data.len()).unwrap(), data);
    }
}
