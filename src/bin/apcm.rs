//! `apcm` — command-line front end: generate workload traces, replay them
//! through any engine, and inspect engine statistics.
//!
//! ```sh
//! apcm gen --subs 100000 --events 20000 --out trace.txt
//! apcm match --trace trace.txt --engine apcm
//! apcm match --trace trace.txt --engine scan --limit 100
//! apcm stats --trace trace.txt
//! apcm serve --addr 127.0.0.1:7401 --shards 4 --engine apcm
//! apcm route --addr 127.0.0.1:7400 --backends 127.0.0.1:7401,127.0.0.1:7402
//! apcm client --addr 127.0.0.1:7401
//! ```

use apcm::baselines::{CountingMatcher, KIndex, ParallelScan, SequentialScan};
use apcm::betree::{BeTree, HybridPcmTree};
use apcm::cluster::{BackendSpec, Router, RouterConfig};
use apcm::core::{ApcmConfig, ApcmMatcher, PcmMatcher};
use apcm::prelude::*;
use apcm::server::client::{connect_stream, is_timeout_error, ConnectOptions};
use apcm::server::{
    EngineChoice, FsyncPolicy, IoModel, PersistConfig, Server, ServerConfig, SlowConsumerPolicy,
};
use apcm::workload::{Trace, ValueDist, WorkloadSpec};
use std::collections::HashMap;
use std::io::BufRead;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "gen" => cmd_gen(&flags),
        "match" => cmd_match(&flags),
        "stats" => cmd_stats(&flags),
        "serve" => cmd_serve(&flags),
        "route" => cmd_route(&flags),
        "client" => cmd_client(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  apcm gen   --subs N [--events N] [--dims N] [--cardinality N] [--preds MIN:MAX]
             [--event-size N] [--planted F] [--zipf S] [--seed N] [--out FILE]
  apcm match --trace FILE [--engine apcm|pcm|hybrid|betree|scan|pscan|counting|kindex]
             [--batch N] [--limit N]
  apcm stats --trace FILE
  apcm serve [--addr HOST:PORT] [--dims N] [--cardinality N] [--shards N]
             [--engine apcm|betree-hybrid|scan] [--window N] [--queue N]
             [--flush-ms N] [--maintenance-ms N] [--slow-consumer drop|disconnect]
             [--persist-dir DIR] [--fsync always|interval|never] [--snapshot-secs N]
             [--snapshot-format colstore|text] [--max-delta-chain N]
             [--rotate-bytes N] [--idle-timeout-ms N] [--max-line-bytes N]
             [--io-model event-loop|threads] [--loop-workers N] [--max-conns N]
             [--replica-of HOST:PORT]  (start as a read-only follower; needs --persist-dir)
  apcm route --backends HOST:PORT,HOST:PORT,... [--addr HOST:PORT] [--dims N]
             [--cardinality N] [--health-ms N] [--probe-timeout-ms N]
             [--connect-timeout-ms N] [--read-timeout-ms N] [--queue N]
             [--max-line-bytes N]
             [--replicas CHAIN,...]  (one chain per backend, same order; a
              chain is HOST:PORT or a `+`-joined hop list f1+f2+f3)
             (live resharding: send `RESHARD ADD PRIMARY [F1 F2 ...]`,
              `RESHARD REMOVE N`, or `RESHARD STATUS` via `apcm client`)
  apcm client [--addr HOST:PORT] [--connect-timeout-ms N] [--read-timeout-ms N]
             [--retries N]
             (reads protocol lines from stdin)";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, found `{flag}`"));
        };
        let value = iter
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(text) => text
            .parse()
            .map_err(|_| format!("flag --{name}: cannot parse `{text}`")),
    }
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let n_subs: usize = get(flags, "subs", 10_000)?;
    let n_events: usize = get(flags, "events", 10_000)?;
    let mut spec = WorkloadSpec::new(n_subs)
        .dims(get(flags, "dims", 20)?)
        .cardinality(get(flags, "cardinality", 1000)?)
        .event_size(get(flags, "event-size", 15)?)
        .planted_fraction(get(flags, "planted", 0.01)?)
        .seed(get(flags, "seed", 42)?);
    if let Some(preds) = flags.get("preds") {
        let (lo, hi) = preds
            .split_once(':')
            .ok_or("flag --preds: expected MIN:MAX")?;
        spec = spec.sub_preds(
            lo.parse().map_err(|_| "flag --preds: bad MIN")?,
            hi.parse().map_err(|_| "flag --preds: bad MAX")?,
        );
    }
    let zipf: f64 = get(flags, "zipf", 0.0)?;
    if zipf > 0.0 {
        spec = spec.values(ValueDist::Zipf(zipf));
    }
    spec.validate()?;

    let wl = spec.build();
    let trace = Trace::from_workload(&wl, n_events);
    let out = flags.get("out").cloned().unwrap_or("trace.txt".to_string());
    trace
        .save_to_path(&out)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} attributes, {} subscriptions, {} events",
        trace.schema.dims(),
        trace.subs.len(),
        trace.events.len()
    );
    Ok(())
}

fn load_trace(flags: &HashMap<String, String>) -> Result<Trace, String> {
    let path = flags.get("trace").ok_or("--trace FILE is required")?;
    Trace::load_from_path(path).map_err(|e| e.to_string())
}

fn cmd_match(flags: &HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(flags)?;
    let engine_name = flags.get("engine").map(String::as_str).unwrap_or("apcm");
    let limit: usize = get(flags, "limit", usize::MAX)?;
    let batch: usize = get(flags, "batch", 256)?;

    let build_start = Instant::now();
    let engine: Box<dyn Matcher> = match engine_name {
        "apcm" => Box::new(
            ApcmMatcher::build(
                &trace.schema,
                &trace.subs,
                &ApcmConfig::default().with_batch_size(batch.max(1)),
            )
            .map_err(|e| e.to_string())?,
        ),
        "pcm" => Box::new(
            PcmMatcher::build(&trace.schema, &trace.subs, &ApcmConfig::pcm())
                .map_err(|e| e.to_string())?,
        ),
        "betree" => Box::new(BeTree::build(&trace.schema, &trace.subs).map_err(|e| e.to_string())?),
        "hybrid" => {
            Box::new(HybridPcmTree::build(&trace.schema, &trace.subs).map_err(|e| e.to_string())?)
        }
        "scan" => Box::new(SequentialScan::new(&trace.subs)),
        "pscan" => Box::new(ParallelScan::new(&trace.subs)),
        "counting" => {
            Box::new(CountingMatcher::build(&trace.schema, &trace.subs).map_err(|e| e.to_string())?)
        }
        "kindex" => Box::new(KIndex::build(&trace.schema, &trace.subs)),
        other => return Err(format!("unknown engine `{other}`")),
    };
    let build_time = build_start.elapsed();

    let events = &trace.events[..trace.events.len().min(limit)];
    if events.is_empty() {
        return Err("trace has no events (generate with --events)".into());
    }
    let start = Instant::now();
    let mut matches = 0usize;
    for chunk in events.chunks(batch.max(1)) {
        for row in engine.match_batch(chunk) {
            matches += row.len();
        }
    }
    let elapsed = start.elapsed();
    println!(
        "{}: {} subscriptions built in {:.2?}",
        engine.name(),
        engine.len(),
        build_time
    );
    println!(
        "matched {} events in {:.2?} ({:.0} events/s), {} total matches \
         ({:.2} per event)",
        events.len(),
        elapsed,
        events.len() as f64 / elapsed.as_secs_f64(),
        matches,
        matches as f64 / events.len() as f64
    );
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7401".to_string());
    let schema = Schema::uniform(get(flags, "dims", 20)?, get(flags, "cardinality", 1000)?);
    let mut config = ServerConfig {
        shards: get(flags, "shards", 4)?,
        window: get(flags, "window", 128)?,
        ingest_queue: get(flags, "queue", 4096)?,
        flush_interval: Duration::from_millis(get(flags, "flush-ms", 5)?),
        maintenance_interval: Duration::from_millis(get(flags, "maintenance-ms", 250)?),
        ..ServerConfig::default()
    };
    if let Some(engine) = flags.get("engine") {
        config.engine = EngineChoice::parse(engine)?;
    }
    if let Some(policy) = flags.get("slow-consumer") {
        config.slow_consumer = SlowConsumerPolicy::parse(policy)?;
    }
    config.max_line_bytes = get(flags, "max-line-bytes", config.max_line_bytes)?;
    let idle_ms: u64 = get(flags, "idle-timeout-ms", 0)?;
    if idle_ms > 0 {
        config.idle_timeout = Some(Duration::from_millis(idle_ms));
    }
    if let Some(model) = flags.get("io-model") {
        config.io_model = IoModel::parse(model)?;
    }
    let max_conns: usize = get(flags, "max-conns", 0)?;
    if max_conns > 0 {
        config.max_conns = Some(max_conns);
    }
    let loop_workers: usize = get(flags, "loop-workers", 0)?;
    if loop_workers > 0 {
        config.loop_workers = Some(loop_workers);
    }
    if let Some(dir) = flags.get("persist-dir") {
        let mut persist = PersistConfig::new(dir);
        if let Some(policy) = flags.get("fsync") {
            persist.fsync = FsyncPolicy::parse(policy)?;
        }
        let snapshot_secs: u64 = get(flags, "snapshot-secs", 60)?;
        persist.snapshot_interval = (snapshot_secs > 0).then(|| Duration::from_secs(snapshot_secs));
        persist.rotate_log_bytes = get(flags, "rotate-bytes", persist.rotate_log_bytes)?;
        if let Some(format) = flags.get("snapshot-format") {
            persist.format = apcm::server::SnapshotFormat::parse(format)?;
        }
        persist.max_delta_chain = get(flags, "max-delta-chain", persist.max_delta_chain)?;
        config.persist = Some(persist);
    }
    if let Some(primary) = flags.get("replica-of") {
        config.replica_of = Some(primary.clone());
    }
    config.validate()?;

    let following = config.replica_of.clone();
    let io_model = config.io_model.name();
    let server = Server::start(schema, config, &addr).map_err(|e| e.to_string())?;
    if let Some(report) = server.recovery_report() {
        print!("{report}");
    }
    println!(
        "listening on {} ({} shards, engine {}, {io_model} io); \
         close stdin or type `stop` to shut down",
        server.local_addr(),
        server.engine().shard_count(),
        server.engine().engine_name()
    );
    if let Some(primary) = following {
        println!("  replica mode: following {primary} (client churn is refused until PROMOTE)");
    }
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(text) if text.trim() == "stop" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    println!("shutting down...");
    print!("{}", server.shutdown());
    Ok(())
}

/// The cluster front: routes churn by id hash, fans publishes to every
/// live backend, and merges rows. Backends are `apcm serve` instances
/// sharing this router's `--dims`/`--cardinality` schema. With
/// `--replicas`, each backend is paired positionally with a comma-
/// separated slot naming its replication chain: a single address is one
/// follower, `f1+f2+f3` is a three-deep chain (each hop started via
/// `apcm serve --replica-of` pointing at the previous one). The router
/// promotes the most caught-up live chain member when the primary is
/// marked down, and serves reads from followers past the churn-ack floor.
fn cmd_route(flags: &HashMap<String, String>) -> Result<(), String> {
    fn split_addrs(text: &str) -> Vec<String> {
        text.split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect()
    }
    let backends: Vec<String> = split_addrs(
        flags
            .get("backends")
            .ok_or("--backends HOST:PORT,... is required")?,
    );
    if backends.is_empty() {
        return Err("--backends must name at least one backend".into());
    }
    // Each comma slot is one partition's chain; `+` separates hops.
    let replicas: Vec<Vec<String>> = flags
        .get("replicas")
        .map(|t| {
            split_addrs(t)
                .into_iter()
                .map(|slot| {
                    slot.split('+')
                        .map(|a| a.trim().to_string())
                        .filter(|a| !a.is_empty())
                        .collect()
                })
                .collect()
        })
        .unwrap_or_default();
    if !replicas.is_empty() && replicas.len() != backends.len() {
        return Err(format!(
            "--replicas names {} follower chains for {} backends (pair them positionally)",
            replicas.len(),
            backends.len()
        ));
    }
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7400".to_string());
    let schema = Schema::uniform(get(flags, "dims", 20)?, get(flags, "cardinality", 1000)?);
    let mut config = RouterConfig {
        health_interval: Duration::from_millis(get(flags, "health-ms", 100)?),
        ..RouterConfig::default()
    };
    let probe_ms: u64 = get(flags, "probe-timeout-ms", 500)?;
    config.probe_timeout = Duration::from_millis(probe_ms);
    config.conn_queue = get(flags, "queue", config.conn_queue)?;
    config.max_line_bytes = get(flags, "max-line-bytes", config.max_line_bytes)?;
    let connect_ms: u64 = get(flags, "connect-timeout-ms", 1000)?;
    config.connect.connect_timeout = (connect_ms > 0).then(|| Duration::from_millis(connect_ms));
    let read_ms: u64 = get(flags, "read-timeout-ms", 10_000)?;
    config.connect.read_timeout = (read_ms > 0).then(|| Duration::from_millis(read_ms));
    config.validate()?;

    let router = if replicas.is_empty() {
        Router::start(schema, &backends, config, &addr)
    } else {
        let specs: Vec<BackendSpec> = backends
            .iter()
            .zip(&replicas)
            .map(|(primary, chain)| BackendSpec::chain(primary.clone(), chain.clone()))
            .collect();
        Router::start_replicated(schema, &specs, config, &addr)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "routing on {} over {} backends ({} up); close stdin or type `stop` to shut down",
        router.local_addr(),
        router.membership().len(),
        router.membership().up_count()
    );
    for line in router.membership().topology_lines() {
        println!("  {line}");
    }
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(text) if text.trim() == "stop" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    println!("shutting down...");
    print!("{}", router.shutdown());
    Ok(())
}

/// Dials the broker with a bounded connect timeout and `retries` extra
/// jittered-backoff attempts (seeded per-process so simultaneous clients
/// spread out).
fn dial_with_retries(
    addr: &str,
    connect_ms: u64,
    read_timeout_ms: u64,
    retries: u32,
) -> Result<std::net::TcpStream, String> {
    let options = ConnectOptions {
        connect_timeout: (connect_ms > 0).then(|| Duration::from_millis(connect_ms)),
        read_timeout: (read_timeout_ms > 0).then(|| Duration::from_millis(read_timeout_ms)),
        attempts: retries.saturating_add(1),
        jitter_seed: std::process::id() as u64,
        ..ConnectOptions::default()
    };
    connect_stream(addr, &options).map_err(|e| format!("connecting to {addr}: {e}"))
}

fn cmd_client(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7401".to_string());
    let connect_ms: u64 = get(flags, "connect-timeout-ms", 5000)?;
    let read_timeout_ms: u64 = get(flags, "read-timeout-ms", 0)?;
    let retries: u32 = get(flags, "retries", 0)?;
    let stream = dial_with_retries(&addr, connect_ms, read_timeout_ms, retries)?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    let read_half = stream.try_clone().map_err(|e| e.to_string())?;

    // A background thread prints everything the broker sends, while this
    // thread pumps stdin lines to the socket (netcat-style). With
    // --read-timeout-ms, an expired wait keeps any partial line in the
    // buffer and retries; only EOF or a hard error ends the printer.
    let printer = std::thread::spawn(move || {
        let mut reader = std::io::BufReader::new(read_half);
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    while line.ends_with('\n') || line.ends_with('\r') {
                        line.pop();
                    }
                    println!("{line}");
                    line.clear();
                }
                Err(e) if is_timeout_error(&e) => continue,
                Err(_) => break,
            }
        }
    });
    {
        use std::io::Write;
        let mut write_half = std::io::BufWriter::new(&stream);
        for line in std::io::stdin().lock().lines() {
            let Ok(text) = line else { break };
            if write_half.write_all(text.as_bytes()).is_err()
                || write_half.write_all(b"\n").is_err()
                || write_half.flush().is_err()
            {
                break;
            }
            if text.trim().eq_ignore_ascii_case("QUIT") {
                break;
            }
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = printer.join();
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(flags)?;
    println!("schema: {} attributes", trace.schema.dims());
    for (_, info) in trace.schema.iter() {
        println!(
            "  {} in [{}, {}] ({} values)",
            info.name(),
            info.domain().min(),
            info.domain().max(),
            info.domain().cardinality()
        );
    }
    println!("subscriptions: {}", trace.subs.len());
    let mut by_size: HashMap<usize, usize> = HashMap::new();
    for sub in &trace.subs {
        *by_size.entry(sub.len()).or_insert(0) += 1;
    }
    let mut sizes: Vec<_> = by_size.into_iter().collect();
    sizes.sort_unstable();
    for (k, n) in sizes {
        println!("  {n} with {k} predicate(s)");
    }
    println!("events: {}", trace.events.len());

    let matcher = ApcmMatcher::build(&trace.schema, &trace.subs, &ApcmConfig::default())
        .map_err(|e| e.to_string())?;
    let stats = matcher.stats();
    println!(
        "A-PCM index: {} clusters ({} compressed, {} direct), predicate space {} bits, \
         bitmap heap {} bytes",
        stats.clusters,
        stats.compressed_clusters,
        stats.direct_clusters,
        stats.width,
        stats.heap_bytes
    );
    Ok(())
}
