//! # apcm — Adaptive Parallel Compressed Event Matching
//!
//! Umbrella crate for the A-PCM workspace (reproduction of Sadoghi &
//! Jacobsen, *Adaptive parallel compressed event matching*, ICDE 2014).
//! Re-exports the public API of every member crate; see the workspace
//! README for the architecture overview and DESIGN.md for the system
//! inventory.
//!
//! ```
//! use apcm::prelude::*;
//!
//! let schema = Schema::uniform(8, 100);
//! let mut subs = Vec::new();
//! subs.push(parser::parse_subscription_with_id(&schema, SubId(0), "a0 >= 10 AND a1 = 5").unwrap());
//! subs.push(parser::parse_subscription_with_id(&schema, SubId(1), "a0 < 10").unwrap());
//!
//! let matcher = ApcmMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
//! let ev = parser::parse_event(&schema, "a0 = 42, a1 = 5").unwrap();
//! assert_eq!(matcher.match_event(&ev), vec![SubId(0)]);
//! ```

pub use apcm_baselines as baselines;
pub use apcm_betree as betree;
pub use apcm_bexpr as bexpr;
pub use apcm_cluster as cluster;
pub use apcm_core as core;
pub use apcm_encoding as encoding;
pub use apcm_server as server;
pub use apcm_workload as workload;

/// One-stop import for applications.
pub mod prelude {
    pub use apcm_bexpr::{
        parser, AttrId, DnfSubscription, Domain, Event, EventBuilder, Matcher, Op, Predicate,
        Schema, SubId, Subscription, Value,
    };
    pub use apcm_cluster::{ClusterHandle, Router, RouterConfig};
    pub use apcm_core::{ApcmConfig, ApcmMatcher, DnfEngine, OsrBuffer, PcmMatcher, ScoredMatcher};
    pub use apcm_server::{BrokerClient, Server, ServerConfig, ShardedEngine};
    pub use apcm_workload::{Trace, WorkloadBuilder, WorkloadSpec};
}
