#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p apcm-server --test recovery (crash/recovery harness)"
cargo test -q -p apcm-server --test recovery

echo "==> ci.sh: all green"
