#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p apcm-colstore (columnar snapshot codecs)"
cargo test -q -p apcm-colstore

echo "==> cargo test -p apcm-server --test recovery (crash/recovery harness)"
cargo test -q -p apcm-server --test recovery

echo "==> cargo test -p apcm-cluster --test cluster (routing/failover harness)"
cargo test -q -p apcm-cluster --test cluster

echo "==> cargo test -p apcm-server --test replication (follower/promotion harness)"
cargo test -q -p apcm-server --test replication

echo "==> cargo test -p apcm-cluster --test failover (failover + chaos drill)"
cargo test -q -p apcm-cluster --test failover

echo "==> cargo test -p apcm-cluster --test migration (elastic resharding drill)"
cargo test -q -p apcm-cluster --test migration

echo "==> cargo test -p apcm-cluster --test summary (summary-pruned scatter harness)"
cargo test -q -p apcm-cluster --test summary

echo "==> cargo test -p apcm-netio (event-loop subsystem)"
cargo test -q -p apcm-netio

echo "==> cargo test -p apcm-server --test eventloop (event-loop broker robustness)"
cargo test -q -p apcm-server --test eventloop

echo "==> cargo bench --workspace --no-run (benches stay compilable)"
cargo bench --workspace --no-run

echo "==> harness smoke run (appends one record set to BENCH_pr3.json)"
cargo run --release -q -p apcm-bench --bin harness -- \
    --experiment e2 --scale 0.002 --budget-ms 50 --seed 42 \
    --json-append BENCH_pr3.json

echo "==> cluster harness smoke run (appends e13 records to BENCH_pr8.json)"
cargo run --release -q -p apcm-bench --bin harness -- \
    --experiment e13 --scale 0.002 --budget-ms 50 --seed 42 \
    --json-append BENCH_pr8.json

echo "==> summary pruning engages on skewed placement (pruned_fanout_ratio < 1.0)"
python3 - <<'EOF'
import json
records = json.load(open("BENCH_pr8.json"))
ratios = [
    r["value"]
    for r in records
    if r["experiment"] == "e13"
    and r["algorithm"] == "routed-skewed"
    and r["metric"] == "pruned_fanout_ratio"
]
assert ratios, "no pruned_fanout_ratio records in BENCH_pr8.json"
latest = ratios[-1]
assert latest < 1.0, f"summary pruning never skipped a backend: ratio {latest}"
print(f"    pruned_fanout_ratio {latest} < 1.0")
EOF

echo "==> replication harness smoke run (appends e14 records to BENCH_pr5.json)"
cargo run --release -q -p apcm-bench --bin harness -- \
    --experiment e14 --scale 0.002 --budget-ms 50 --seed 42 \
    --json-append BENCH_pr5.json

echo "==> snapshot-format harness smoke run (appends e15 records to BENCH_pr6.json)"
cargo run --release -q -p apcm-bench --bin harness -- \
    --experiment e15 --scale 0.002 --budget-ms 50 --seed 42 \
    --json-append BENCH_pr6.json

echo "==> resharding harness smoke run (appends e16 records to BENCH_pr7.json)"
cargo run --release -q -p apcm-bench --bin harness -- \
    --experiment e16 --scale 0.002 --budget-ms 50 --seed 42 \
    --json-append BENCH_pr7.json

echo "==> event-loop harness smoke run (appends e17 records to BENCH_pr9.json)"
# e17 raises RLIMIT_NOFILE to the hard limit itself (best-effort); ulimit
# here widens the starting soft limit where the shell is allowed to.
ulimit -n "$(ulimit -Hn)" 2>/dev/null || true
cargo run --release -q -p apcm-bench --bin harness -- \
    --experiment e17 --scale 0.1 --budget-ms 50 --seed 42 \
    --json-append BENCH_pr9.json

echo "==> replication-chain harness smoke run (appends e18 records to BENCH_pr10.json)"
cargo run --release -q -p apcm-bench --bin harness -- \
    --experiment e18 --scale 0.002 --budget-ms 50 --seed 42 \
    --json-append BENCH_pr10.json

echo "==> follower reads engage (reads_follower_served > 0 with followers present)"
python3 - <<'EOF'
import json
records = json.load(open("BENCH_pr10.json"))
served = [
    r["value"]
    for r in records
    if r["experiment"] == "e18"
    and r["param"] in ("followers=1", "followers=2")
    and r["metric"] == "reads_follower_served"
]
assert served, "no reads_follower_served records in BENCH_pr10.json"
latest = served[-1]
assert latest > 0, "the router never served a routed window from a follower"
print(f"    reads_follower_served {latest:.0f} > 0")
EOF

echo "==> ci.sh: all green"
